"""Consistency rules: dotted path literals vs. the live schemas.

* ``RPR-C001`` -- scenario override paths.  Exact paths (``--set`` literals,
  ``with_overrides``/``with_set`` arguments) resolve through the live
  :func:`~repro.api.scenario.override_keys`; sweep-axis paths (``--axis``
  literals, ``SweepAxis``/``from_axes`` keys, spec-JSON ``axes`` sections)
  resolve through :func:`~repro.sweep.spec.canonical_axis_key`, so the
  same abbreviations the sweep engine accepts pass the checker.
* ``RPR-C002`` -- ``experiment.metric`` paths (``Objective``/``Constraint``
  literals, ``--objective``/``--constraint`` CLI literals, objective-spec
  JSON, markdown docs) resolve through the live experiment registry and
  each result dataclass's numeric fields.

Three scanners feed the two rules: a Python AST scanner (only known call
shapes and CLI argument lists -- arbitrary strings are never guessed at),
a markdown scanner (CLI flags anywhere; backticked dotted tokens whose
head is a scenario section or a registered experiment), and a JSON scanner
(sweep-spec ``axes`` and objective-spec ``objectives``/``constraints``).
"""

from __future__ import annotations

import ast
import json
import re
from typing import Iterator, List, Mapping, Optional, Sequence

from repro.analysis.check import schema
from repro.analysis.check.findings import Finding
from repro.analysis.check.pysource import PySource

# --------------------------------------------------------------------- python


def check_c_rules_python(module: PySource) -> Iterator[Finding]:
    """RPR-C001/C002 over one Python file's known call shapes."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield from _check_call(module, node)
        elif isinstance(node, (ast.List, ast.Tuple)):
            yield from _check_cli_literal_list(module, node)


def _check_call(module: PySource, node: ast.Call) -> Iterator[Finding]:
    func = node.func
    tail = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if tail is None:
        return
    if tail == "SweepAxis":
        key = _kwarg_or_arg(node, "key", 0)
        yield from _axis_finding(module, key)
    elif tail == "from_axes":
        mapping = _kwarg_or_arg(node, "axes", 0)
        if isinstance(mapping, ast.Dict):
            for key in mapping.keys:
                yield from _axis_finding(module, key)
    elif tail == "with_overrides":
        mapping = _kwarg_or_arg(node, "overrides", 0)
        if isinstance(mapping, ast.Dict):
            for key in mapping.keys:
                yield from _override_finding(module, key)
    elif tail == "with_set":
        assignments = _kwarg_or_arg(node, "assignments", 0)
        if isinstance(assignments, (ast.List, ast.Tuple, ast.Set)):
            for element in assignments.elts:
                text = _const_str(element)
                if text is not None and "=" in text:
                    yield from _override_finding(
                        module, element, path=text.partition("=")[0].strip()
                    )
    elif tail in ("Objective", "Constraint"):
        metric = _kwarg_or_arg(node, "metric", 0)
        yield from _metric_finding(module, metric, strip_sense=(tail == "Objective"))
    elif tail == "extract_metric":
        metric = _kwarg_or_arg(node, "path", 1)
        yield from _metric_finding(module, metric)


def _check_cli_literal_list(
    module: PySource, node: "ast.List | ast.Tuple"
) -> Iterator[Finding]:
    """Validate ``["--set", "K=V", ...]`` style CLI literals (tests, docs)."""
    elements = node.elts
    for index, element in enumerate(elements[:-1]):
        flag = _const_str(element)
        if flag not in ("--set", "--axis", "--objective", "--constraint"):
            continue
        value_node = elements[index + 1]
        value = _const_str(value_node)
        if value is None or value.startswith("-"):
            continue  # the next element is another flag, not this flag's value
        if flag in ("--set", "--axis"):
            if "=" not in value:
                continue
            path = value.partition("=")[0].strip()
            if flag == "--set":
                yield from _override_finding(module, value_node, path=path)
            else:
                yield from _axis_finding(module, value_node, path=path)
        elif flag == "--objective":
            yield from _metric_finding(
                module, value_node, strip_sense=True, skip_files=True
            )
        else:  # --constraint METRIC:OP=VALUE
            path = value.partition(":")[0].strip()
            yield from _metric_finding(module, value_node, path=path)


def _kwarg_or_arg(node: ast.Call, name: str, position: int) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    if len(node.args) > position:
        return node.args[position]
    return None


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _override_finding(
    module: PySource, node: Optional[ast.AST], path: Optional[str] = None
) -> Iterator[Finding]:
    path = path if path is not None else _const_str(node)
    if path is None or node is None or path == "name":
        return
    error = schema.resolve_override_path(path)
    if error is not None:
        yield _py_finding("RPR-C001", module, node, error)


def _axis_finding(
    module: PySource, node: Optional[ast.AST], path: Optional[str] = None
) -> Iterator[Finding]:
    path = path if path is not None else _const_str(node)
    if path is None or node is None:
        return
    error = schema.resolve_axis_path(path)
    if error is not None:
        yield _py_finding("RPR-C001", module, node, error)


def _metric_finding(
    module: PySource,
    node: Optional[ast.AST],
    path: Optional[str] = None,
    strip_sense: bool = False,
    skip_files: bool = False,
) -> Iterator[Finding]:
    path = path if path is not None else _const_str(node)
    if path is None or node is None:
        return
    if skip_files and ("/" in path or path.endswith(".json")):
        return  # a single --objective may name an objective-spec file
    if strip_sense:
        head, sep, sense = path.rpartition(":")
        if sep and sense in ("max", "min", "maximize", "minimize"):
            path = head
    error = schema.resolve_metric_path(path)
    if error is not None:
        yield _py_finding("RPR-C002", module, node, error)


def _py_finding(rule_id: str, module: PySource, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity="error",
        path=module.path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", -1) + 1,
        message=message,
    )


# ------------------------------------------------------------------- markdown

#: CLI flags anywhere in the document (fenced examples and prose alike).
_MD_SET = re.compile(r"--set\s+([A-Za-z_][A-Za-z0-9_.]*)=")
_MD_AXIS = re.compile(r"--axis\s+([A-Za-z_][A-Za-z0-9_.]*)=")
_MD_OBJECTIVE = re.compile(r"--objective\s+([A-Za-z_][A-Za-z0-9_./]*(?::[a-z_]+)?)")
_MD_CONSTRAINT = re.compile(r"--constraint\s+([A-Za-z_][A-Za-z0-9_.]*):")
#: Backticked dotted tokens (`` `hmc.pe_frequency_mhz` ``, `` `fig17.average_speedup` ``).
_MD_BACKTICK = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*\.[A-Za-z0-9_.]+)`")


def _is_placeholder(token: str) -> bool:
    """True for usage-line placeholders (``KEY``, ``K``, ``key``)."""
    if token == token.upper() and token != token.lower():
        return True
    return token.lower() in ("key", "value", "key.path")


def check_c_rules_markdown(path: str, source: str) -> Iterator[Finding]:
    """RPR-C001/C002 over one markdown document."""
    backtick_heads = _backtick_heads()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _MD_SET.finditer(line):
            key = match.group(1)
            if key == "name" or _is_placeholder(key):
                continue
            error = schema.resolve_override_path(key)
            if error is not None:
                yield _text_finding("RPR-C001", path, lineno, match.start(1) + 1, error)
        for match in _MD_AXIS.finditer(line):
            if _is_placeholder(match.group(1)):
                continue
            error = schema.resolve_axis_path(match.group(1))
            if error is not None:
                yield _text_finding("RPR-C001", path, lineno, match.start(1) + 1, error)
        for match in _MD_OBJECTIVE.finditer(line):
            token = match.group(1)
            if "/" in token or token.endswith(".json") or _is_placeholder(token):
                continue
            head, sep, sense = token.rpartition(":")
            if sep and sense in ("max", "min", "maximize", "minimize"):
                token = head
            if "." not in token:
                continue
            error = schema.resolve_metric_path(token)
            if error is not None:
                yield _text_finding("RPR-C002", path, lineno, match.start(1) + 1, error)
        for match in _MD_CONSTRAINT.finditer(line):
            if _is_placeholder(match.group(1)):
                continue
            error = schema.resolve_metric_path(match.group(1))
            if error is not None:
                yield _text_finding("RPR-C002", path, lineno, match.start(1) + 1, error)
        for match in _MD_BACKTICK.finditer(line):
            token = match.group(1)
            head = token.split(".", 1)[0]
            if head in backtick_heads["scenario"]:
                error = schema.resolve_override_path(token)
                if error is not None:
                    yield _text_finding(
                        "RPR-C001", path, lineno, match.start(1) + 1, error
                    )
            elif head in backtick_heads["experiments"]:
                error = schema.resolve_metric_path(token)
                if error is not None:
                    yield _text_finding(
                        "RPR-C002", path, lineno, match.start(1) + 1, error
                    )


def _backtick_heads() -> Mapping[str, frozenset]:
    """Dotted-token heads worth validating in markdown prose.

    Scenario sections that *have* nested fields (``hmc.``, ``gpu_params.``)
    and registered experiment names (``fig17.``); anything else
    (``repro.sweep``, ``engine.diskcache``) is a module reference, not a
    schema path.
    """
    scenario_heads = frozenset(
        key.split(".", 1)[0] for key in schema.scenario_override_keys() if "." in key
    )
    experiment_heads = frozenset(schema.experiment_metric_schema())
    return {"scenario": scenario_heads, "experiments": experiment_heads}


def _text_finding(
    rule_id: str, path: str, line: int, column: int, message: str
) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity="error",
        path=path,
        line=line,
        column=column,
        message=message,
    )


# ----------------------------------------------------------------------- json


def check_c_rules_json(path: str, source: str) -> Iterator[Finding]:
    """RPR-C001/C002 over one JSON document (sweep / objective specs).

    Non-spec JSON (benchmark trajectories, scenario files without ``axes``)
    is ignored: the scanner only validates the sections it understands.
    """
    try:
        data = json.loads(source)
    except json.JSONDecodeError:
        return  # not this rule's problem; broken JSON fails its consumer's tests
    if not isinstance(data, Mapping):
        return
    axes = data.get("axes")
    if isinstance(axes, Mapping):
        for key in axes:
            yield from _json_axis_finding(path, source, str(key))
    elif isinstance(axes, Sequence) and not isinstance(axes, str):
        for entry in axes:
            if isinstance(entry, Mapping) and "key" in entry:
                yield from _json_axis_finding(path, source, str(entry["key"]))
    for section, strip_sense in (("objectives", True), ("constraints", False)):
        entries = data.get(section)
        if not isinstance(entries, Sequence) or isinstance(entries, str):
            continue
        for entry in entries:
            if isinstance(entry, Mapping) and "metric" in entry:
                token = str(entry["metric"])
            elif isinstance(entry, str):
                token = entry.partition(":")[0] if not strip_sense else entry
                if strip_sense:
                    head, sep, sense = token.rpartition(":")
                    if sep and sense in ("max", "min", "maximize", "minimize"):
                        token = head
            else:
                continue
            error = schema.resolve_metric_path(token)
            if error is not None:
                yield _text_finding(
                    "RPR-C002", path, _line_of(source, token), 0, error
                )


def _json_axis_finding(path: str, source: str, key: str) -> Iterator[Finding]:
    error = schema.resolve_axis_path(key)
    if error is not None:
        yield _text_finding("RPR-C001", path, _line_of(source, key), 0, error)


def _line_of(source: str, literal: str) -> int:
    """Best-effort line number of a JSON string literal (1 if not found)."""
    needle = json.dumps(literal)
    for lineno, line in enumerate(source.splitlines(), start=1):
        if needle in line or literal in line:
            return lineno
    return 1
