"""Inline suppressions: ``repro: allow(RPR-D001)`` comments.

Two forms are recognized, each written after a ``#`` comment marker, in
Python comments and (for the markdown/JSON scanners) anywhere in a line:

* ``repro: allow(RPR-D001)`` -- suppress the named rule(s) on this line.
* ``repro: allow-file(RPR-C002)`` -- suppress the named rule(s) for the
  whole file (used by test fixtures that exercise deliberately-bad inputs).

Multiple IDs are comma-separated: ``repro: allow(RPR-C001, RPR-C002)``.
Suppressions are tracked: one that never matched a finding of a rule that
actually ran on the file is itself reported as ``RPR-S001`` (unused
suppression), so stale annotations cannot quietly mask future regressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.check.findings import Finding

#: ``repro: allow(ID[, ID...])`` / ``repro: allow-file(ID[, ID...])``.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow(?P<file>-file)?\(\s*(?P<ids>[A-Za-z0-9\-, ]+?)\s*\)"
)


@dataclass
class Suppressions:
    """The suppression state of one checked file."""

    path: str
    #: ``(line, rule_id)`` -> used flag, for line-scoped suppressions.
    lines: Dict[Tuple[int, str], bool] = field(default_factory=dict)
    #: ``rule_id`` -> used flag, for file-scoped suppressions (+ their line).
    whole_file: Dict[str, bool] = field(default_factory=dict)
    #: ``rule_id`` -> declaration line of the file-scoped suppression.
    whole_file_lines: Dict[str, int] = field(default_factory=dict)

    def add(self, line: int, rule_id: str, whole_file: bool = False) -> None:
        """Register one suppression parsed from a comment."""
        if whole_file:
            self.whole_file.setdefault(rule_id, False)
            self.whole_file_lines.setdefault(rule_id, line)
        else:
            self.lines.setdefault((line, rule_id), False)

    def suppresses(self, finding: Finding) -> bool:
        """True (and marks the suppression used) if ``finding`` is allowed."""
        if finding.rule_id in self.whole_file:
            self.whole_file[finding.rule_id] = True
            return True
        key = (finding.line, finding.rule_id)
        if key in self.lines:
            self.lines[key] = True
            return True
        return False

    def unused(self, ran_rule_ids: Set[str]) -> List[Finding]:
        """``RPR-S001`` findings for suppressions that never fired.

        Only suppressions of rules that actually *ran* on this file count:
        a rule disabled via ``--select``/``--ignore`` could not have fired,
        so its annotations are not reported as stale.
        """
        findings = []
        for (line, rule_id), used in sorted(self.lines.items()):
            if not used and rule_id in ran_rule_ids:
                findings.append(
                    Finding(
                        rule_id="RPR-S001",
                        severity="warning",
                        path=self.path,
                        line=line,
                        column=0,
                        message=f"unused suppression: nothing to allow({rule_id}) here",
                    )
                )
        for rule_id, used in sorted(self.whole_file.items()):
            if not used and rule_id in ran_rule_ids:
                findings.append(
                    Finding(
                        rule_id="RPR-S001",
                        severity="warning",
                        path=self.path,
                        line=self.whole_file_lines[rule_id],
                        column=0,
                        message=(
                            f"unused suppression: nothing to allow-file({rule_id}) "
                            f"in this file"
                        ),
                    )
                )
        return findings


def parse_suppressions(path: str, source: str) -> Suppressions:
    """Scan ``source`` for ``repro: allow`` comments (line-based, any file type)."""
    suppressions = Suppressions(path=path)
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:
            continue
        for match in _ALLOW_RE.finditer(line):
            whole_file = match.group("file") is not None
            for raw_id in match.group("ids").split(","):
                rule_id = raw_id.strip()
                if rule_id:
                    suppressions.add(lineno, rule_id, whole_file=whole_file)
    return suppressions
