"""The check runner: file discovery, rule dispatch, result rendering.

:func:`run_check` walks the given paths (``.py``/``.md``/``.json`` files,
directories recursively, skipping hidden and ``__pycache__`` entries),
runs every active rule over each file, filters findings through the
file's inline suppressions, reports stale suppressions as ``RPR-S001``,
and returns a :class:`CheckResult` whose text and JSON renderings are
deterministic (sorted by path/line/column/rule).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.check import concurrency, consistency, determinism, hygiene
from repro.analysis.check.findings import SEVERITIES, Finding
from repro.analysis.check.pysource import PySource
from repro.analysis.check.registry import RULES_BY_ID, resolve_selection, rule_ids
from repro.analysis.check.suppress import parse_suppressions

#: Python checkers, each tagged with the rule IDs it can emit; a checker
#: runs when any of its rules is active, and its output is filtered to the
#: active subset afterwards.
_PY_RULES: Tuple[
    Tuple[Tuple[str, ...], Callable[[PySource], Iterable[Finding]]], ...
] = (
    (("RPR-D001",), determinism.check_d001),
    (("RPR-D002",), determinism.check_d002),
    (("RPR-D003",), determinism.check_d003),
    (("RPR-T001",), concurrency.check_t001),
    (("RPR-T002",), concurrency.check_t002),
    (("RPR-T003",), concurrency.check_t003),
    (("RPR-C001", "RPR-C002"), consistency.check_c_rules_python),
    (("RPR-H001",), hygiene.check_h001),
)

#: Rules the markdown/JSON consistency scanners can emit.
_TEXT_C_RULES: Tuple[str, ...] = ("RPR-C001", "RPR-C002")

#: File extensions the checker understands.
_CHECKED_SUFFIXES = frozenset({".py", ".md", ".json"})


@dataclass
class CheckResult:
    """The outcome of one :func:`run_check` invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: rule IDs that were active for this run, in registry order.
    active_rules: List[str] = field(default_factory=list)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def ok(self, max_severity: str = "warning") -> bool:
        """True when the run passes at the given severity floor.

        ``max_severity="warning"`` (the default) means any finding fails;
        ``"error"`` lets warnings through (used by ``--severity error``).
        """
        if max_severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {max_severity!r}; choose from {list(SEVERITIES)}"
            )
        if max_severity == "error":
            return not self.errors()
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """The JSON artifact shape (stable keys, findings in report order)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules": list(self.active_rules),
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_text(self) -> str:
        """The human report: one line per finding plus a summary line."""
        lines = [f.format() for f in self.findings]
        errors, warnings = len(self.errors()), len(self.warnings())
        if not self.findings:
            lines.append(
                f"repro check: {self.files_checked} file(s) clean "
                f"({len(self.active_rules)} rule(s) active)"
            )
        else:
            lines.append(
                f"repro check: {errors} error(s), {warnings} warning(s) "
                f"in {self.files_checked} file(s)"
            )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into the sorted list of checkable files.

    Directories recurse; hidden directories (``.git``, ``.github`` would
    hide CI configs -- but those are YAML, not checked anyway) and
    ``__pycache__`` are skipped.  A path that does not exist raises
    :class:`FileNotFoundError` -- a CI typo must not silently check nothing.
    """
    found: Set[str] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            found.add(str(path))
            continue
        for candidate in sorted(path.rglob("*")):
            if not candidate.is_file():
                continue
            if candidate.suffix not in _CHECKED_SUFFIXES:
                continue
            relative = candidate.relative_to(path)
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in relative.parts[:-1]
            ):
                continue
            if candidate.name.startswith("."):
                continue
            found.add(str(candidate))
    return sorted(found)


def check_file(
    path: str, active: Set[str], source: Optional[str] = None
) -> List[Finding]:
    """All findings for one file under the active rule set.

    Suppression comments are honored; stale ones surface as ``RPR-S001``
    (when that rule is active).  Unreadable files yield no findings --
    the caller's build will fail on them anyway.
    """
    if source is None:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return []
    suppressions = parse_suppressions(path, source)
    raw: List[Finding] = []
    ran: Set[str] = set()
    suffix = Path(path).suffix
    if suffix == ".py":
        module = PySource.parse(path, source)
        if module is not None:
            for emits, checker in _PY_RULES:
                emitted_active = set(emits) & active
                if not emitted_active:
                    continue
                ran.update(emitted_active)
                raw.extend(checker(module))
    elif suffix == ".md":
        if set(_TEXT_C_RULES) & active:
            ran.update(set(_TEXT_C_RULES) & active)
            raw.extend(consistency.check_c_rules_markdown(path, source))
    elif suffix == ".json":
        if set(_TEXT_C_RULES) & active:
            ran.update(set(_TEXT_C_RULES) & active)
            raw.extend(consistency.check_c_rules_json(path, source))
    findings = [
        f for f in raw if f.rule_id in active and not suppressions.suppresses(f)
    ]
    if "RPR-S001" in active:
        findings.extend(suppressions.unused(ran))
    return findings


def run_check(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> CheckResult:
    """Check every file under ``paths`` with the selected rules."""
    active = resolve_selection(select, ignore)
    files = discover_files(paths)
    findings: List[Finding] = []
    for path in files:
        findings.extend(check_file(path, active))
    findings.sort(key=Finding.sort_key)
    return CheckResult(
        findings=findings,
        files_checked=len(files),
        active_rules=[r for r in rule_ids() if r in active],
    )
