"""Functional Capsule Network model (numpy).

This package implements the CapsNet described in Sabour et al. (Dynamic
Routing Between Capsules) and used by the PIM-CapsNet paper as the workload:

* convolutional feature extraction (``Conv2D``),
* the PrimaryCaps layer that groups conv features into low-level capsules,
* the class-capsule ("DigitCaps") layer whose low-to-high capsule mapping is
  computed by a routing procedure (dynamic routing or EM routing),
* the fully connected decoder used for reconstruction,
* margin loss, a small SGD trainer, and deterministic synthetic datasets so
  that accuracy experiments (Table 5 of the paper) run offline.

The routing procedure accepts a :class:`repro.arithmetic.MathContext`, which
is how inference "on" the PIM-CapsNet PEs (approximate exp / division /
inverse sqrt, with or without accuracy recovery) is evaluated functionally.
"""

from repro.capsnet.functions import margin_loss, relu, sigmoid, softmax, squash
from repro.capsnet.routing import DynamicRouting, EMRouting, RoutingResult
from repro.capsnet.layers import (
    CapsuleLayer,
    Conv2D,
    Dense,
    Flatten,
    PrimaryCaps,
    ReLU,
    Sigmoid,
)
from repro.capsnet.model import CapsNet, CapsNetConfig, DecoderConfig, evaluate_accuracies
from repro.capsnet.datasets import (
    DatasetSpec,
    SyntheticImageDataset,
    dataset_for_benchmark,
    dataset_for_spec,
)
from repro.capsnet.training import Trainer, TrainingResult

__all__ = [
    "margin_loss",
    "relu",
    "sigmoid",
    "softmax",
    "squash",
    "DynamicRouting",
    "EMRouting",
    "RoutingResult",
    "CapsuleLayer",
    "Conv2D",
    "Dense",
    "Flatten",
    "PrimaryCaps",
    "ReLU",
    "Sigmoid",
    "CapsNet",
    "CapsNetConfig",
    "DecoderConfig",
    "evaluate_accuracies",
    "DatasetSpec",
    "SyntheticImageDataset",
    "dataset_for_benchmark",
    "dataset_for_spec",
    "Trainer",
    "TrainingResult",
]
