"""Routing procedures between capsule layers.

Two algorithms are implemented:

* :class:`DynamicRouting` -- the routing-by-agreement of Sabour et al.,
  which is the algorithm the paper analyses (Algorithm 1 / Eqs. 1-5).
* :class:`EMRouting` -- a vectorised Expectation-Maximization routing in the
  spirit of Hinton et al. (2018), included because the paper states its
  in-memory optimizations apply to other routing algorithms with the same
  execution pattern.

Both consume *prediction vectors* ``u_hat`` of shape
``(batch, num_low, num_high, high_dim)`` and produce the high-level capsules
``v`` of shape ``(batch, num_high, high_dim)``.

The arithmetic used for the special functions (softmax/exp, squash) is
provided by a :class:`repro.arithmetic.MathContext`, so the exact GPU
reference and the approximate PIM-CapsNet PE datapaths share this code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arithmetic.context import MathContext
from repro.capsnet import kernels
from repro.capsnet.kernels import as_f32


@dataclass
class RoutingResult:
    """Output of one routing procedure invocation.

    Attributes:
        high_capsules: ``(batch, num_high, high_dim)`` routed output capsules.
        coefficients: final routing coefficients ``c_ij`` of shape
            ``(num_low, num_high)`` (dynamic routing) or per-batch
            responsibilities ``(batch, num_low, num_high)`` (EM routing).
        logits: the agreement accumulators ``b_ij`` that produced the final
            coefficients (dynamic routing only).
        iterations: number of routing iterations executed.
        pre_squash: the final weighted sum ``s_j`` (the squash input that
            produced ``high_capsules``; dynamic routing only).  Cached so the
            capsule layer's backward pass can reuse it instead of recomputing
            the weighted sum.
    """

    high_capsules: np.ndarray
    coefficients: np.ndarray
    logits: Optional[np.ndarray]
    iterations: int
    pre_squash: Optional[np.ndarray] = None


@dataclass
class DynamicRouting:
    """Dynamic routing-by-agreement (Algorithm 1 of the paper).

    Args:
        iterations: number of routing iterations (3 in the original CapsNet;
            the Caps-SV2/SV3 benchmarks use 6 and 9).
        context: arithmetic implementation for softmax / squash.
        share_coefficients_across_batch: the paper's Algorithm 1 keeps a
            single ``b_ij`` shared by all batched inputs (the agreement is
            summed over the batch in Eq. 4); set to False to keep per-input
            coefficients, which matches some open-source implementations.
    """

    iterations: int = 3
    context: MathContext = field(default_factory=MathContext.exact)
    share_coefficients_across_batch: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")

    def __call__(self, u_hat: np.ndarray) -> RoutingResult:
        """Route prediction vectors to high-level capsules.

        Args:
            u_hat: prediction vectors ``(batch, num_low, num_high, high_dim)``.

        Returns:
            A :class:`RoutingResult`.
        """
        u_hat = np.asarray(u_hat, dtype=np.float32)
        if u_hat.ndim != 4:
            raise ValueError(
                f"u_hat must have shape (batch, num_low, num_high, high_dim), got {u_hat.shape}"
            )
        batch, num_low, num_high, _ = u_hat.shape
        ctx = self.context

        if self.share_coefficients_across_batch:
            b = np.zeros((num_low, num_high), dtype=np.float32)
        else:
            b = np.zeros((batch, num_low, num_high), dtype=np.float32)

        v = np.zeros((batch, num_high, u_hat.shape[-1]), dtype=np.float32)
        s = v
        c = None
        for iteration in range(self.iterations):
            # Eq. 5: c_ij = softmax_j(b_ij)
            c = ctx.softmax(b, axis=-1)
            # Eq. 2: s_j^k = sum_i u_hat_{j|i}^k * c_ij
            s = kernels.weighted_sum(u_hat, c)
            # Eq. 3: v_j^k = squash(s_j^k)
            v = ctx.squash(s, axis=-1)
            if iteration + 1 == self.iterations:
                # The agreement update of the last iteration is dead work:
                # the updated b would only feed the softmax of a further
                # iteration that never runs.  ``logits`` therefore reports
                # the accumulators that produced the *final* coefficients.
                break
            # Eq. 4: b_ij += sum_k v_j^k . u_hat_{j|i}^k
            agreement = kernels.agreement(u_hat, v)
            if self.share_coefficients_across_batch:
                b = b + np.sum(agreement, axis=0, dtype=np.float32)
            else:
                b = b + agreement

        assert c is not None
        return RoutingResult(
            high_capsules=v,
            coefficients=c,
            logits=b,
            iterations=self.iterations,
            pre_squash=s,
        )


@dataclass
class EMRouting:
    """Expectation-Maximization routing (vector-capsule formulation).

    Each high-level capsule is modelled as an axis-aligned Gaussian over the
    prediction vectors that vote for it; the E-step computes responsibilities
    and the M-step re-estimates the Gaussian parameters and the capsule
    activation.  The returned ``high_capsules`` are the per-class Gaussian
    means scaled by the capsule activation, which keeps the output interface
    identical to :class:`DynamicRouting`.

    Args:
        iterations: number of EM iterations.
        context: arithmetic implementation for exponentials / divisions.
        inverse_temperature: sharpness of the E-step responsibilities.
        min_variance: variance floor for numerical robustness.
    """

    iterations: int = 3
    context: MathContext = field(default_factory=MathContext.exact)
    inverse_temperature: float = 1.0
    min_variance: float = 1e-4

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")

    def __call__(self, u_hat: np.ndarray) -> RoutingResult:
        """Route prediction vectors to high-level capsules via EM."""
        u_hat = np.asarray(u_hat, dtype=np.float32)
        if u_hat.ndim != 4:
            raise ValueError(
                f"u_hat must have shape (batch, num_low, num_high, high_dim), got {u_hat.shape}"
            )
        batch, num_low, num_high, high_dim = u_hat.shape
        ctx = self.context

        # Responsibilities r_{b,i,j}: start uniform over the high capsules.
        r = np.full((batch, num_low, num_high), 1.0 / num_high, dtype=np.float32)
        mu = np.zeros((batch, num_high, high_dim), dtype=np.float32)
        activation = np.full((batch, num_high), 1.0 / num_high, dtype=np.float32)

        for _ in range(self.iterations):
            # ---- M-step: update Gaussian means/variances and activations.
            r_sum = np.sum(r, axis=1, dtype=np.float32) + np.float32(1e-8)  # (batch, H)
            mu = (
                as_f32(np.einsum("blj,bljh->bjh", r, u_hat))
                / r_sum[:, :, np.newaxis]
            )
            diff = u_hat - mu[:, np.newaxis, :, :]
            var = (
                as_f32(np.einsum("blj,bljh->bjh", r, diff * diff))
                / r_sum[:, :, np.newaxis]
            )
            var = np.maximum(var, np.float32(self.min_variance))
            # Activation: capsules explaining more votes with lower variance activate.
            cost = np.sum(np.log(var), axis=-1) * r_sum / np.float32(num_low)
            activation = 1.0 / (1.0 + ctx.exp(cost - np.mean(cost, axis=-1, keepdims=True)))
            activation = as_f32(activation)

            # ---- E-step: recompute responsibilities from Gaussian likelihoods.
            diff = u_hat - mu[:, np.newaxis, :, :]
            log_prob = -0.5 * np.sum(
                diff * diff / var[:, np.newaxis, :, :] + np.log(var)[:, np.newaxis, :, :],
                axis=-1,
                dtype=np.float32,
            )
            logits = self.inverse_temperature * log_prob + np.log(
                activation[:, np.newaxis, :] + np.float32(1e-8)
            )
            r = ctx.softmax(as_f32(logits), axis=-1)

        high = as_f32(mu * activation[:, :, np.newaxis])
        return RoutingResult(high_capsules=high, coefficients=r, logits=None, iterations=self.iterations)
