"""Elementary functions used by the CapsNet layers.

All functions operate on numpy arrays in FP32 (the precision the paper
targets for the PIM design) and accept an optional
:class:`repro.arithmetic.MathContext` where the routing procedure's special
functions are involved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arithmetic.context import MathContext
from repro.arithmetic.fp32 import as_f32

_EPS = np.float32(1e-12)


def _ctx(context: Optional[MathContext]) -> MathContext:
    return context if context is not None else MathContext.exact()


def squash(vectors: np.ndarray, axis: int = -1, context: Optional[MathContext] = None) -> np.ndarray:
    """Squash non-linearity of Eq. (3).

    ``v = ||s||^2 / (1 + ||s||^2) * s / ||s||`` -- shrinks short vectors to
    near-zero length and long vectors to just below unit length, preserving
    orientation.

    Args:
        vectors: input array, the capsule dimension along ``axis``.
        axis: capsule dimension.
        context: arithmetic implementation (exact FP32 by default).
    """
    return _ctx(context).squash(np.asarray(vectors, dtype=np.float32), axis=axis)


def softmax(logits: np.ndarray, axis: int = -1, context: Optional[MathContext] = None) -> np.ndarray:
    """Numerically stable softmax of Eq. (5)."""
    return _ctx(context).softmax(np.asarray(logits, dtype=np.float32), axis=axis)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float32), np.float32(0.0))


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` with respect to its input."""
    return (np.asarray(x, dtype=np.float32) > 0).astype(np.float32)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, used by the reconstruction decoder's output layer."""
    x = np.asarray(x, dtype=np.float32)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return as_f32(out)


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of the sigmoid given its *output* ``y``."""
    y = np.asarray(y, dtype=np.float32)
    return as_f32(y * (1.0 - y))


def capsule_lengths(capsules: np.ndarray, axis: int = -1) -> np.ndarray:
    """Euclidean length of each capsule vector (the class probability)."""
    capsules = np.asarray(capsules, dtype=np.float32)
    return np.sqrt(np.sum(capsules * capsules, axis=axis, dtype=np.float32) + _EPS)


def margin_loss(
    lengths: np.ndarray,
    labels_onehot: np.ndarray,
    m_plus: float = 0.9,
    m_minus: float = 0.1,
    lambda_down: float = 0.5,
) -> float:
    """Margin loss of Sabour et al. used to train the class capsules.

    ``L_k = T_k max(0, m+ - ||v_k||)^2 + lambda (1 - T_k) max(0, ||v_k|| - m-)^2``

    Args:
        lengths: capsule lengths, shape ``(batch, num_classes)``.
        labels_onehot: one-hot labels with the same shape.
        m_plus: positive margin.
        m_minus: negative margin.
        lambda_down: down-weighting of the absent-class term.

    Returns:
        Mean loss over the batch.
    """
    lengths = np.asarray(lengths, dtype=np.float32)
    t = np.asarray(labels_onehot, dtype=np.float32)
    present = np.maximum(0.0, m_plus - lengths) ** 2
    absent = np.maximum(0.0, lengths - m_minus) ** 2
    per_class = t * present + lambda_down * (1.0 - t) * absent
    return float(np.mean(np.sum(per_class, axis=1)))


def margin_loss_grad(
    lengths: np.ndarray,
    labels_onehot: np.ndarray,
    m_plus: float = 0.9,
    m_minus: float = 0.1,
    lambda_down: float = 0.5,
) -> np.ndarray:
    """Gradient of :func:`margin_loss` with respect to the capsule lengths."""
    lengths = np.asarray(lengths, dtype=np.float32)
    t = np.asarray(labels_onehot, dtype=np.float32)
    batch = lengths.shape[0]
    grad_present = -2.0 * np.maximum(0.0, m_plus - lengths)
    grad_absent = 2.0 * np.maximum(0.0, lengths - m_minus)
    grad = t * grad_present + lambda_down * (1.0 - t) * grad_absent
    return as_f32(grad / np.float32(batch))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot vectors."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def reconstruction_loss(reconstruction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared reconstruction error used by the decoder."""
    reconstruction = np.asarray(reconstruction, dtype=np.float32)
    target = np.asarray(target, dtype=np.float32)
    if reconstruction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: reconstruction {reconstruction.shape} vs target {target.shape}"
        )
    return float(np.mean((reconstruction - target) ** 2))
