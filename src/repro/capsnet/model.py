"""The CapsNet model: encoder (Conv -> PrimaryCaps -> class capsules) + decoder.

The structure follows Fig. 2 of the paper (the CapsNet-MNIST architecture of
Sabour et al.): a 9x9 convolution with 256 channels, a PrimaryCaps layer of
32 capsule channels x 8D capsules, a class-capsule layer of 16D capsules (one
per class) connected through the routing procedure, and a 3-layer fully
connected decoder (512 -> 1024 -> #pixels) for reconstruction.

``CapsNetConfig.scaled`` produces smaller-but-identically-shaped models so
functional tests and the offline accuracy experiments finish quickly; the
performance experiments never execute this functional model at full size --
they use the analytic workload models in :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arithmetic.context import MathContext
from repro.arithmetic.fp32 import as_f32
from repro.capsnet import functions as F
from repro.capsnet.layers import (
    CapsuleLayer,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    PrimaryCaps,
    ReLU,
    Sigmoid,
)
from repro.capsnet.routing import DynamicRouting


@dataclass(frozen=True)
class DecoderConfig:
    """Configuration of the fully connected reconstruction decoder."""

    hidden_sizes: Tuple[int, ...] = (512, 1024)

    def layer_sizes(self, input_size: int, output_size: int) -> List[Tuple[int, int]]:
        """Return ``(in, out)`` pairs for each dense layer of the decoder."""
        sizes = [input_size, *self.hidden_sizes, output_size]
        return [(sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]


@dataclass(frozen=True)
class CapsNetConfig:
    """Architecture hyper-parameters of a CapsNet.

    Attributes:
        input_shape: input image shape ``(channels, height, width)``.
        num_classes: number of output classes (= number of high-level capsules).
        conv_channels: channels of the first convolution (256 in the paper).
        conv_kernel: kernel size of the first convolution (9).
        conv_stride: stride of the first convolution (1).
        primary_channels: PrimaryCaps capsule channels (32).
        primary_dim: dimensionality of low-level capsules (8).
        primary_kernel: PrimaryCaps convolution kernel (9).
        primary_stride: PrimaryCaps convolution stride (2).
        class_caps_dim: dimensionality of high-level capsules (16).
        routing_iterations: dynamic routing iterations (3 by default).
        decoder: decoder configuration.
        use_decoder: whether to instantiate the reconstruction decoder.
    """

    input_shape: Tuple[int, int, int] = (1, 28, 28)
    num_classes: int = 10
    conv_channels: int = 256
    conv_kernel: int = 9
    conv_stride: int = 1
    primary_channels: int = 32
    primary_dim: int = 8
    primary_kernel: int = 9
    primary_stride: int = 2
    class_caps_dim: int = 16
    routing_iterations: int = 3
    decoder: DecoderConfig = field(default_factory=DecoderConfig)
    use_decoder: bool = True

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def mnist() -> "CapsNetConfig":
        """The CapsNet-MNIST configuration of Fig. 2."""
        return CapsNetConfig()

    @staticmethod
    def scaled(
        input_shape: Tuple[int, int, int] = (1, 20, 20),
        num_classes: int = 4,
        scale: float = 0.125,
        routing_iterations: int = 3,
    ) -> "CapsNetConfig":
        """A reduced CapsNet preserving the layer structure.

        Args:
            input_shape: input image shape.
            num_classes: number of classes.
            scale: multiplier applied to channel counts (floored at small
                positive minimums so the structure survives).
            routing_iterations: routing iterations.
        """
        conv_channels = max(8, int(round(256 * scale)))
        primary_channels = max(2, int(round(32 * scale)))
        return CapsNetConfig(
            input_shape=input_shape,
            num_classes=num_classes,
            conv_channels=conv_channels,
            conv_kernel=5,
            conv_stride=1,
            primary_channels=primary_channels,
            primary_dim=8,
            primary_kernel=5,
            primary_stride=2,
            class_caps_dim=16,
            routing_iterations=routing_iterations,
            decoder=DecoderConfig(hidden_sizes=(64, 128)),
        )

    # -- derived geometry -----------------------------------------------------

    def conv_output_hw(self) -> Tuple[int, int]:
        """Spatial output size of the first convolution."""
        _, h, w = self.input_shape
        out_h = (h - self.conv_kernel) // self.conv_stride + 1
        out_w = (w - self.conv_kernel) // self.conv_stride + 1
        return out_h, out_w

    def primary_output_hw(self) -> Tuple[int, int]:
        """Spatial output size of the PrimaryCaps convolution."""
        h, w = self.conv_output_hw()
        out_h = (h - self.primary_kernel) // self.primary_stride + 1
        out_w = (w - self.primary_kernel) // self.primary_stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError("input too small for the configured kernels/strides")
        return out_h, out_w

    @property
    def num_low_capsules(self) -> int:
        """Number of low-level (L) capsules produced by PrimaryCaps."""
        h, w = self.primary_output_hw()
        return self.primary_channels * h * w

    @property
    def num_pixels(self) -> int:
        """Number of scalar pixels in the input image."""
        c, h, w = self.input_shape
        return c * h * w


@dataclass
class ForwardResult:
    """Outputs of a CapsNet forward pass.

    Attributes:
        class_capsules: high-level capsules ``(batch, num_classes, class_caps_dim)``.
        lengths: capsule lengths ``(batch, num_classes)`` (class probabilities).
        predictions: argmax class predictions ``(batch,)``.
        reconstruction: flattened reconstructed images or ``None`` when the
            decoder is disabled / not requested.
        low_capsules: the PrimaryCaps output ``(batch, num_low, primary_dim)``.
    """

    class_capsules: np.ndarray
    lengths: np.ndarray
    predictions: np.ndarray
    reconstruction: Optional[np.ndarray]
    low_capsules: np.ndarray


class CapsNet:
    """The full CapsNet model (encoder + optional decoder).

    Args:
        config: architecture configuration.
        context: arithmetic context used by the squash / routing softmax --
            pass an approximate context to emulate inference on the
            PIM-CapsNet PEs.
        seed: RNG seed for weight initialization.
        init_weights: set to False to build the layer structure without
            allocating (or drawing) any parameters; the caller then shares
            another model's parameter arrays (:meth:`with_context`).
    """

    def __init__(
        self,
        config: CapsNetConfig,
        context: Optional[MathContext] = None,
        seed: int = 0,
        init_weights: bool = True,
    ) -> None:
        self.config = config
        self.context = context or MathContext.exact()
        rng = np.random.default_rng(seed)

        in_channels = config.input_shape[0]
        self.conv = Conv2D(
            in_channels,
            config.conv_channels,
            config.conv_kernel,
            stride=config.conv_stride,
            rng=rng,
            init_weights=init_weights,
        )
        self.relu = ReLU()
        self.primary = PrimaryCaps(
            config.conv_channels,
            config.primary_channels,
            config.primary_dim,
            kernel_size=config.primary_kernel,
            stride=config.primary_stride,
            rng=rng,
            context=self.context,
            init_weights=init_weights,
        )
        self.class_caps = CapsuleLayer(
            num_low=config.num_low_capsules,
            num_high=config.num_classes,
            low_dim=config.primary_dim,
            high_dim=config.class_caps_dim,
            routing=DynamicRouting(
                iterations=config.routing_iterations, context=self.context
            ),
            rng=rng,
            init_weights=init_weights,
        )

        self.decoder_layers: List[Layer] = []
        if config.use_decoder:
            decoder_input = config.num_classes * config.class_caps_dim
            sizes = config.decoder.layer_sizes(decoder_input, config.num_pixels)
            for idx, (fan_in, fan_out) in enumerate(sizes):
                self.decoder_layers.append(
                    Dense(fan_in, fan_out, rng=rng, init_weights=init_weights)
                )
                if idx < len(sizes) - 1:
                    self.decoder_layers.append(ReLU())
                else:
                    self.decoder_layers.append(Sigmoid())

    def _parameterized_layers(self) -> List[Layer]:
        """All layers *structurally* owning parameters, in forward order.

        Unlike :attr:`trainable_layers` this does not filter on ``params``
        being non-empty, so it also enumerates the (still parameter-less)
        layers of an ``init_weights=False`` shell -- which is exactly what
        :meth:`with_context` needs to pair layers for weight sharing.
        """
        layers: List[Layer] = [self.conv, self.primary, self.class_caps]
        layers.extend(layer for layer in self.decoder_layers if isinstance(layer, Dense))
        return layers

    def with_context(self, context: Optional[MathContext]) -> "CapsNet":
        """A view of this model evaluating under a different arithmetic context.

        The clone shares this model's parameter *arrays* (no re-initialization,
        no copies -- later training updates are visible to the clone) but owns
        its own layer caches and gradients, so the Table-5 experiments can
        evaluate one set of trained weights under the exact and approximate
        PE arithmetics without rebuilding or reloading a network per context.
        """
        clone = CapsNet(self.config, context=context, init_weights=False)
        for mine, theirs in zip(self._parameterized_layers(), clone._parameterized_layers()):
            theirs.params = mine.params
            theirs.zero_grads()
        # PrimaryCaps aliases its inner convolution's parameter dict; re-link
        # the clone's inner conv to the shared dict as well.
        clone.primary.conv.params = clone.primary.params
        clone.primary.conv.grads = clone.primary.grads
        return clone

    # -- inference ------------------------------------------------------------

    def forward(
        self,
        images: np.ndarray,
        labels_onehot: Optional[np.ndarray] = None,
        run_decoder: bool = True,
    ) -> ForwardResult:
        """Run the CapsNet on a batch of images.

        Args:
            images: ``(batch, channels, height, width)`` input images.
            labels_onehot: when given, the decoder reconstructs from the true
                class capsule (training convention); otherwise it uses the
                predicted class.
            run_decoder: set to False to skip the decoder entirely.

        Returns:
            A :class:`ForwardResult`.
        """
        images = np.asarray(images, dtype=np.float32)
        features = self.relu.forward(self.conv.forward(images))
        low = self.primary.forward(features)
        high = self.class_caps.forward(low)
        lengths = F.capsule_lengths(high)
        predictions = np.argmax(lengths, axis=1)

        reconstruction = None
        if run_decoder and self.decoder_layers:
            mask_source = labels_onehot
            if mask_source is None:
                mask_source = F.one_hot(predictions, self.config.num_classes)
            masked = high * mask_source[:, :, np.newaxis]
            self._decoder_mask = mask_source
            x = masked.reshape(images.shape[0], -1)
            for layer in self.decoder_layers:
                x = layer.forward(x)
            reconstruction = x

        return ForwardResult(
            class_capsules=high,
            lengths=lengths,
            predictions=predictions,
            reconstruction=reconstruction,
            low_capsules=low,
        )

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Return class predictions for a batch of images (no decoder)."""
        return self.forward(images, run_decoder=False).predictions

    # -- split inference (multi-context evaluation) ---------------------------

    def primary_pre_squash(self, images: np.ndarray) -> np.ndarray:
        """The context-independent trunk: conv features grouped into capsules.

        Everything up to (but excluding) the PrimaryCaps squash uses plain
        FP32 convolution arithmetic and therefore computes identical values
        under every :class:`~repro.arithmetic.context.MathContext`; the
        Table-5 evaluation computes it once per batch and shares it across
        the exact / approximate / recovered contexts.
        """
        images = np.asarray(images, dtype=np.float32)
        features = self.relu.forward(self.conv.forward(images))
        return self.primary.capsules_pre_squash(self.primary.conv.forward(features))

    def predictions_from_pre_squash(self, pre_squash: np.ndarray) -> np.ndarray:
        """The context-dependent head: squash, routing, and the class argmax.

        Combined with :meth:`primary_pre_squash` this computes exactly what
        :meth:`predict` computes (bit-identical), just split at the trunk
        boundary.
        """
        low = self.primary.context.squash(pre_squash, axis=-1)
        high = self.class_caps.forward(low)
        lengths = F.capsule_lengths(high)
        return np.argmax(lengths, axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
        """Classification accuracy on ``images`` / ``labels``."""
        labels = np.asarray(labels)
        correct = 0
        for start in range(0, images.shape[0], batch_size):
            batch = images[start : start + batch_size]
            preds = self.predict(batch)
            correct += int(np.sum(preds == labels[start : start + batch_size]))
        return correct / float(images.shape[0])

    # -- training hooks -------------------------------------------------------

    @property
    def trainable_layers(self) -> List[Layer]:
        """All layers owning parameters, in forward order."""
        layers: List[Layer] = [self.conv, self.primary, self.class_caps]
        layers.extend(layer for layer in self.decoder_layers if layer.params)
        return layers

    @property
    def parameter_count(self) -> int:
        """Total number of trainable parameters."""
        return sum(layer.parameter_count for layer in self.trainable_layers)

    def zero_grads(self) -> None:
        """Reset gradients of every trainable layer."""
        for layer in self.trainable_layers:
            layer.zero_grads()

    def backward_from_losses(
        self,
        result: ForwardResult,
        labels_onehot: np.ndarray,
        images: np.ndarray,
        reconstruction_weight: float = 0.0005,
    ) -> None:
        """Backpropagate margin (+ optional reconstruction) loss gradients.

        The gradients are accumulated into each layer's ``grads``; the caller
        (the :class:`~repro.capsnet.training.Trainer`) applies the update.
        """
        labels_onehot = np.asarray(labels_onehot, dtype=np.float32)
        batch = images.shape[0]

        # Margin-loss gradient wrt capsule lengths, then wrt capsule vectors.
        grad_lengths = F.margin_loss_grad(result.lengths, labels_onehot)
        safe_lengths = np.maximum(result.lengths, 1e-9)[:, :, np.newaxis]
        grad_high = grad_lengths[:, :, np.newaxis] * result.class_capsules / safe_lengths

        # Reconstruction-loss gradient through the decoder (if enabled).
        if result.reconstruction is not None and reconstruction_weight > 0.0:
            flat_target = images.reshape(batch, -1)
            grad_recon = (
                2.0
                * reconstruction_weight
                * (result.reconstruction - flat_target)
                / np.float32(flat_target.size / batch)
            ).astype(np.float32)
            grad = grad_recon
            for layer in reversed(self.decoder_layers):
                grad = layer.backward(grad)
            grad_masked = grad.reshape(batch, self.config.num_classes, self.config.class_caps_dim)
            grad_high = grad_high + grad_masked * self._decoder_mask[:, :, np.newaxis]

        grad_low = self.class_caps.backward(as_f32(grad_high))
        grad_features = self.primary.backward(grad_low)
        grad_features = self.relu.backward(grad_features)
        # First layer: only the parameter gradients are needed -- skip the
        # (expensive, otherwise-discarded) gradient wrt the input images.
        self.conv.backward(grad_features, compute_input_grad=False)

    # -- persistence ----------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat dictionary of all parameters (copy)."""
        state: Dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.trainable_layers):
            for name, value in layer.params.items():
                state[f"layer{idx}.{name}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        for idx, layer in enumerate(self.trainable_layers):
            for name in layer.params:
                key = f"layer{idx}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key!r} in state dict")
                if state[key].shape != layer.params[name].shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{state[key].shape} vs {layer.params[name].shape}"
                    )
                layer.params[name][...] = state[key]


def evaluate_accuracies(
    models: Dict[str, "CapsNet"],
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
) -> Dict[str, float]:
    """Accuracy of several context-variants of one model, sharing the trunk.

    ``models`` maps labels (e.g. ``"origin"`` / ``"approx"``) to CapsNets
    that share the *same weights* but evaluate under different arithmetic
    contexts (:meth:`CapsNet.with_context`).  The context-independent
    convolution trunk is computed once per batch and reused for every
    context, which is where most of the evaluation time goes; the result is
    bit-identical to calling :meth:`CapsNet.accuracy` once per model.
    """
    labels = np.asarray(labels)
    first = next(iter(models.values()))
    correct = {label: 0 for label in models}
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        batch_labels = labels[start : start + batch_size]
        pre_squash = first.primary_pre_squash(batch)
        for label, model in models.items():
            preds = model.predictions_from_pre_squash(pre_squash)
            correct[label] += int(np.sum(preds == batch_labels))
    total = float(images.shape[0])
    return {label: count / total for label, count in correct.items()}
