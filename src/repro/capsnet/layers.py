"""Neural network layers for the CapsNet functional model.

The layers implement both forward and backward passes with plain numpy so
that the accuracy experiments (Table 5 of the paper) can train small
CapsNets end-to-end without any deep learning framework.  The backward pass
of the capsule layer follows the common practice of treating the final
routing coefficients as constants (gradients flow through the prediction
vectors and the squash non-linearity).

All layers follow a minimal protocol:

* ``forward(x)`` stores whatever is needed for the backward pass and returns
  the output,
* ``backward(grad)`` returns the gradient with respect to the input and
  accumulates parameter gradients in ``grads``,
* ``params`` / ``grads`` are dictionaries keyed by parameter name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arithmetic.context import MathContext
from repro.capsnet import functions as F
from repro.capsnet import kernels
from repro.capsnet.kernels import as_f32
from repro.capsnet.routing import DynamicRouting, RoutingResult


class Layer:
    """Base class providing parameter bookkeeping for trainable layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated parameter gradients."""
        for name, value in self.params.items():
            self.grads[name] = np.zeros_like(value)

    @property
    def parameter_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))


# ---------------------------------------------------------------------------
# im2col helpers
# ---------------------------------------------------------------------------


#: Re-exported from :mod:`repro.capsnet.kernels` (their historical home);
#: the vectorized implementations live there next to their bit-exactness
#: documentation and regression tests.
conv_output_size = kernels.conv_output_size
im2col = kernels.im2col
col2im = kernels.col2im


# ---------------------------------------------------------------------------
# Standard layers
# ---------------------------------------------------------------------------


class Conv2D(Layer):
    """2-D convolution layer (NCHW layout) backed by im2col.

    Args:
        in_channels: input channel count.
        out_channels: output channel count.
        kernel_size: square kernel size.
        stride: stride in both dimensions.
        padding: zero padding in both dimensions.
        rng: RNG used for He-uniform weight initialization.
        init_weights: set to False to skip parameter allocation entirely --
            the caller then shares another layer's ``params``
            (:meth:`repro.capsnet.model.CapsNet.with_context`).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        init_weights: bool = True,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ValueError("Conv2D dimensions must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        if init_weights:
            rng = rng or np.random.default_rng(0)
            fan_in = in_channels * kernel_size * kernel_size
            bound = float(np.sqrt(6.0 / fan_in))
            self.params["weight"] = rng.uniform(
                -bound, bound, size=(out_channels, in_channels, kernel_size, kernel_size)
            ).astype(np.float32)
            self.params["bias"] = np.zeros(out_channels, dtype=np.float32)
            self.zero_grads()
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int], Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, (out_h, out_w) = im2col(
            x, (self.kernel_size, self.kernel_size), self.stride, self.padding
        )
        weight = self.params["weight"].reshape(self.out_channels, -1)
        # The PR 1 golden outputs were generated with `@`; swapping kernels in
        # this seed-era path would change trained weights bit-for-bit and
        # invalidate every golden report, so these sites are allowed as-is.
        out = cols @ weight.T + self.params["bias"]  # repro: allow(RPR-D002)
        out = out.reshape(x.shape[0], out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (cols, (out_h, out_w), x.shape)
        return np.ascontiguousarray(out, dtype=np.float32)

    def backward(
        self, grad: np.ndarray, compute_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Accumulate parameter gradients; return the input gradient.

        Args:
            grad: output gradient ``(batch, out_channels, out_h, out_w)``.
            compute_input_grad: pass ``False`` when this is the model's first
                layer -- the ``col2im`` fold producing the input gradient is
                the single most expensive backward kernel and its result
                would be discarded (``None`` is returned instead).
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, (out_h, out_w), input_shape = self._cache
        grad = np.asarray(grad, dtype=np.float32)
        grad_cols_out = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(
            input_shape[0], out_h * out_w, -1
        )
        weight = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] += (
            np.einsum("bpo,bpk->ok", grad_cols_out, cols).reshape(self.params["weight"].shape)
        )
        self.grads["bias"] += grad_cols_out.sum(axis=(0, 1))
        if not compute_input_grad:
            return None
        grad_cols = grad_cols_out @ weight  # repro: allow(RPR-D002)
        return col2im(
            grad_cols,
            input_shape,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
        )

    def output_shape(self, input_hw: Tuple[int, int]) -> Tuple[int, int, int]:
        """Return ``(out_channels, out_h, out_w)`` for a given input size."""
        out_h = conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding)
        return self.out_channels, out_h, out_w


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._mask = (x > 0).astype(np.float32)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad, dtype=np.float32) * self._mask


class Sigmoid(Layer):
    """Element-wise logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(x)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad, dtype=np.float32) * F.sigmoid_grad(self._output)


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad, dtype=np.float32).reshape(self._shape)


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        init_weights: bool = True,
    ) -> None:
        super().__init__()
        if min(in_features, out_features) < 1:
            raise ValueError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        if init_weights:
            rng = rng or np.random.default_rng(0)
            bound = float(np.sqrt(6.0 / in_features))
            self.params["weight"] = rng.uniform(
                -bound, bound, size=(in_features, out_features)
            ).astype(np.float32)
            self.params["bias"] = np.zeros(out_features, dtype=np.float32)
            self.zero_grads()
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input (batch, {self.in_features}), got {x.shape}")
        self._input = x
        # Same seed-era golden-path exemption as Conv2D.forward above.
        return x @ self.params["weight"] + self.params["bias"]  # repro: allow(RPR-D002)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad, dtype=np.float32)
        self.grads["weight"] += self._input.T @ grad  # repro: allow(RPR-D002)
        self.grads["bias"] += grad.sum(axis=0)
        return grad @ self.params["weight"].T  # repro: allow(RPR-D002)


# ---------------------------------------------------------------------------
# Capsule layers
# ---------------------------------------------------------------------------


def _squash_backward(s: np.ndarray, v_grad: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of the squash non-linearity with respect to its input ``s``."""
    s = np.asarray(s, dtype=np.float32)
    v_grad = np.asarray(v_grad, dtype=np.float32)
    norm_sq = np.sum(s * s, axis=axis, keepdims=True, dtype=np.float32) + np.float32(1e-12)
    norm = np.sqrt(norm_sq)
    g = norm / (1.0 + norm_sq)
    g_prime = (1.0 - norm_sq) / (1.0 + norm_sq) ** 2
    dot = np.sum(s * v_grad, axis=axis, keepdims=True, dtype=np.float32)
    return as_f32(g * v_grad + (g_prime / norm) * dot * s)


class PrimaryCaps(Layer):
    """PrimaryCaps layer: convolution + capsule grouping + squash.

    A convolution produces ``capsule_channels * capsule_dim`` feature maps;
    the activations at each spatial location are grouped into
    ``capsule_channels`` capsules of ``capsule_dim`` elements each and passed
    through the squash non-linearity.

    Args:
        in_channels: channels of the incoming feature map.
        capsule_channels: number of capsule types (32 in CapsNet-MNIST).
        capsule_dim: dimensionality of each low-level capsule (8).
        kernel_size: convolution kernel size (9).
        stride: convolution stride (2).
        rng: RNG for weight initialization.
        context: arithmetic used by the squash.
    """

    def __init__(
        self,
        in_channels: int,
        capsule_channels: int,
        capsule_dim: int,
        kernel_size: int = 9,
        stride: int = 2,
        rng: Optional[np.random.Generator] = None,
        context: Optional[MathContext] = None,
        init_weights: bool = True,
    ) -> None:
        super().__init__()
        self.capsule_channels = capsule_channels
        self.capsule_dim = capsule_dim
        self.context = context or MathContext.exact()
        self.conv = Conv2D(
            in_channels,
            capsule_channels * capsule_dim,
            kernel_size,
            stride=stride,
            padding=0,
            rng=rng,
            init_weights=init_weights,
        )
        self.params = self.conv.params
        self.grads = self.conv.grads
        self._pre_squash: Optional[np.ndarray] = None
        self._conv_shape: Optional[Tuple[int, ...]] = None

    def capsules_pre_squash(self, features: np.ndarray) -> np.ndarray:
        """Group conv feature maps into capsules (the pre-squash trunk output).

        Exposed separately from :meth:`forward` so multi-context evaluation
        can share the (context-independent) convolution trunk and apply only
        the context-dependent squash per arithmetic context.
        """
        batch, channels, height, width = features.shape
        self._conv_shape = features.shape
        capsules = features.reshape(
            batch, self.capsule_channels, self.capsule_dim, height, width
        )
        capsules = capsules.transpose(0, 1, 3, 4, 2).reshape(batch, -1, self.capsule_dim)
        self._pre_squash = capsules
        return capsules

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return low-level capsules of shape ``(batch, num_capsules, capsule_dim)``."""
        capsules = self.capsules_pre_squash(self.conv.forward(x))
        return self.context.squash(capsules, axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._pre_squash is None or self._conv_shape is None:
            raise RuntimeError("backward called before forward")
        grad_pre = _squash_backward(self._pre_squash, np.asarray(grad, dtype=np.float32))
        batch, channels, height, width = self._conv_shape
        grad_features = grad_pre.reshape(
            batch, self.capsule_channels, height, width, self.capsule_dim
        ).transpose(0, 1, 4, 2, 3).reshape(batch, channels, height, width)
        return self.conv.backward(grad_features)

    def num_capsules(self, input_hw: Tuple[int, int]) -> int:
        """Number of low-level capsules produced for a given input size."""
        _, out_h, out_w = self.conv.output_shape(input_hw)
        return self.capsule_channels * out_h * out_w


class CapsuleLayer(Layer):
    """Fully connected capsule layer with a routing procedure.

    Implements Eq. (1) (prediction vectors ``u_hat = u x W``) followed by the
    routing procedure (Eqs. 2-5) provided by ``routing``.

    Args:
        num_low: number of incoming low-level capsules.
        num_high: number of outgoing high-level capsules (classes).
        low_dim: dimensionality of low-level capsules.
        high_dim: dimensionality of high-level capsules.
        routing: routing procedure instance (``DynamicRouting`` by default).
        rng: RNG for weight initialization.
    """

    def __init__(
        self,
        num_low: int,
        num_high: int,
        low_dim: int,
        high_dim: int,
        routing: Optional[DynamicRouting] = None,
        rng: Optional[np.random.Generator] = None,
        init_weights: bool = True,
    ) -> None:
        super().__init__()
        if min(num_low, num_high, low_dim, high_dim) < 1:
            raise ValueError("capsule layer dimensions must be positive")
        self.num_low = num_low
        self.num_high = num_high
        self.low_dim = low_dim
        self.high_dim = high_dim
        self.routing = routing or DynamicRouting()
        if init_weights:
            rng = rng or np.random.default_rng(0)
            self.params["weight"] = (
                rng.standard_normal((num_low, num_high, low_dim, high_dim)) * 0.05
            ).astype(np.float32)
            self.zero_grads()
        self._input: Optional[np.ndarray] = None
        self._u_hat: Optional[np.ndarray] = None
        self._result: Optional[RoutingResult] = None

    def forward(self, low_capsules: np.ndarray) -> np.ndarray:
        """Route low-level capsules to high-level capsules.

        Args:
            low_capsules: ``(batch, num_low, low_dim)``.

        Returns:
            High-level capsules ``(batch, num_high, high_dim)``.
        """
        u = np.asarray(low_capsules, dtype=np.float32)
        if u.ndim != 3 or u.shape[1] != self.num_low or u.shape[2] != self.low_dim:
            raise ValueError(
                f"expected input (batch, {self.num_low}, {self.low_dim}), got {u.shape}"
            )
        self._input = u
        # Eq. 1: u_hat_{j|i} = u_i x W_ij
        u_hat = kernels.predict_vectors(u, self.params["weight"])
        self._u_hat = u_hat
        self._result = self.routing(u_hat)
        return self._result.high_capsules

    @property
    def last_routing_result(self) -> Optional[RoutingResult]:
        """Routing diagnostics of the most recent forward pass."""
        return self._result

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None or self._u_hat is None or self._result is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad, dtype=np.float32)
        c = self._result.coefficients
        # The squash backward needs s_j; the routing pass already computed it
        # for its final iteration (s = sum_i c_ij u_hat_ij with exactly these
        # coefficients), so reuse the cached value instead of recomputing the
        # weighted sum.
        s = self._result.pre_squash
        if s is None:  # routing implementations that do not expose s
            s = kernels.weighted_sum(self._u_hat, c)
        grad_s = _squash_backward(s, grad)
        # s_j = sum_i c_ij u_hat_ij  (c treated as constant).
        grad_u_hat = kernels.capsule_grad_u_hat(grad_s, c)
        # u_hat = einsum('bld,ljdh->bljh', u, W)
        self.grads["weight"] += kernels.capsule_weight_gradient(self._input, grad_u_hat)
        return kernels.capsule_input_gradient(grad_u_hat, self.params["weight"])
