"""Vectorized, bit-exact compute kernels for the functional CapsNet.

The Table-5 accuracy experiments train one small CapsNet per dataset, and
that training dominates a full ``repro reproduce``.  This module collects the
hot inner kernels of :mod:`repro.capsnet.layers` / :mod:`~repro.capsnet.
routing` in one place so they can be optimized (and regression-tested for
bit-exactness) independently of the layer bookkeeping.

**The golden-report constraint.**  The default-scenario Table 5 report must
stay *byte-identical* across refactors, which means every kernel here must
produce bit-identical FP32 outputs to the naive formulation it replaces --
``np.array_equal``, not ``allclose``.  That rules out the obvious BLAS
rewrites: ``matmul``/``tensordot``/``einsum(optimize=True)`` accumulate in a
different order than ``np.einsum``'s direct C loops (blocked FMA vs.
sequential sum-of-products), and were measured to change low bits on every
contraction in this file.  The transforms that *are* applied fall into three
bit-safe classes:

* **Pure data movement** (``im2col`` gathers, the ``col2im`` scatter, layout
  changes): no arithmetic happens, so any faster implementation producing
  the same element values is exact by construction.  The ``col2im`` scatter
  preserves the accumulation *order* of the double loop it replaces
  (contributions arrive per target cell in ``(kh, kw, out_h, out_w)``
  order, which is what :func:`numpy.ufunc.at` guarantees for the
  precomputed index array).
* **Operand memory-layout changes under an unchanged ``einsum``.**
  ``np.einsum``'s direct contraction loops were measured to be
  layout-invariant bit-wise for the subscript/layout pairs used here while
  being up to 3-4x faster on cache-friendly layouts.  This is an empirical
  property, not a documented guarantee, so every pair shipped here is
  locked in by ``tests/capsnet/test_capsnet_kernels.py`` across the full grid of
  geometries the experiments use; layout changes that flipped bits on any
  grid point (e.g. every relayout of ``weight`` in
  :func:`capsule_input_gradient`) were rejected.
* **Algebraically identical re-associations** that keep the per-element
  reduction order (e.g. fusing ``(u_hat * c).sum(axis=1)`` into a single
  ``einsum`` with the same ``l``-major accumulation).

Every public kernel documents the naive formulation it must match; the
regression tests compare against those naive forms directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.arithmetic.fp32 import as_f32

__all__ = [
    "as_f32",
    "agreement",
    "capsule_grad_u_hat",
    "capsule_input_gradient",
    "capsule_weight_gradient",
    "col2im",
    "conv_output_size",
    "im2col",
    "predict_vectors",
    "routing_weight_view",
    "weighted_sum",
]


# ---------------------------------------------------------------------------
# Convolution kernels (im2col / col2im)
# ---------------------------------------------------------------------------


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold image patches into columns.

    Args:
        x: input of shape ``(batch, channels, height, width)``.
        kernel: ``(kh, kw)``.
        stride: stride in both dimensions.
        padding: zero padding in both dimensions.

    Returns:
        ``(columns, (out_h, out_w))`` where columns has shape
        ``(batch, out_h*out_w, channels*kh*kw)``.
    """
    batch, channels, height, width = x.shape
    kh, kw = kernel
    out_h = conv_output_size(height, kh, stride, padding)
    out_w = conv_output_size(width, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h * out_w, channels * kh * kw)
    return np.ascontiguousarray(cols, dtype=np.float32), (out_h, out_w)


#: Flat scatter indices per convolution geometry, so repeated backward passes
#: through the same layer never rebuild them.  Keyed by the full geometry
#: (including batch size -- the final training batch of an epoch may be
#: smaller).  Entries weigh ~8x the cols array they serve, so the cache is a
#: bounded LRU: one experiment run touches a handful of geometries, but a
#: long-lived process sweeping many workloads must not accumulate them
#: forever.
_COL2IM_INDEX_CACHE: "OrderedDict[Tuple[int, int, int, int, int, int, int, int, int], np.ndarray]" = (
    OrderedDict()
)

#: Upper bound on cached scatter-index geometries (LRU-evicted beyond it).
_COL2IM_INDEX_CACHE_SIZE = 32


def _col2im_indices(
    batch: int,
    channels: int,
    padded_h: int,
    padded_w: int,
    out_h: int,
    out_w: int,
    kernel: Tuple[int, int],
    stride: int,
) -> np.ndarray:
    """Cached flat scatter indices mapping ``(b, c, kh, kw, oh, ow)`` -> pixel."""
    kh, kw = kernel
    key = (batch, channels, padded_h, padded_w, out_h, out_w, kh, kw, stride)
    indices = _COL2IM_INDEX_CACHE.get(key)
    if indices is None:
        i = np.arange(kh)[:, None, None, None]
        j = np.arange(kw)[None, :, None, None]
        oh = np.arange(out_h)[None, None, :, None]
        ow = np.arange(out_w)[None, None, None, :]
        spatial = ((i + stride * oh) * padded_w + (j + stride * ow)).reshape(-1)
        planes = np.arange(batch * channels, dtype=np.intp) * (padded_h * padded_w)
        indices = (planes[:, None] + spatial[None, :]).reshape(-1).astype(np.intp, copy=False)
        _COL2IM_INDEX_CACHE[key] = indices
        while len(_COL2IM_INDEX_CACHE) > _COL2IM_INDEX_CACHE_SIZE:
            _COL2IM_INDEX_CACHE.popitem(last=False)
    else:
        _COL2IM_INDEX_CACHE.move_to_end(key)
    return indices


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold column gradients back into an image gradient (inverse of :func:`im2col`).

    Equivalent to the naive double loop over kernel offsets::

        for i in range(kh):
            for j in range(kw):
                padded[:, :, i:i+stride*oh:stride, j:j+stride*ow:stride] += \
                    cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)

    but as one flat ``np.add.at`` scatter with precomputed indices.  The
    index array enumerates contributions in ``(b, c, kh, kw, oh, ow)`` order
    and ``ufunc.at`` applies them sequentially, so every target pixel
    accumulates its overlapping contributions in exactly the loop's
    ``(i, j)`` order -- the result is bit-identical, not just close.
    """
    batch, channels, height, width = input_shape
    kh, kw = kernel
    out_h = conv_output_size(height, kh, stride, padding)
    out_w = conv_output_size(width, kw, stride, padding)
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    indices = _col2im_indices(
        batch, channels, padded_h, padded_w, out_h, out_w, kernel, stride
    )
    contributions = np.ascontiguousarray(
        cols.reshape(batch, out_h, out_w, channels, kh, kw).transpose(0, 3, 4, 5, 1, 2),
        dtype=np.float32,
    ).reshape(-1)
    padded = np.zeros(batch * channels * padded_h * padded_w, dtype=np.float32)
    np.add.at(padded, indices, contributions)
    padded = padded.reshape(batch, channels, padded_h, padded_w)
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------------------
# Capsule-layer contractions (Eq. 1 and its gradients)
# ---------------------------------------------------------------------------


def routing_weight_view(weight: np.ndarray) -> np.ndarray:
    """The capsule weight ``(l, j, d, h)`` re-laid-out for fast contraction.

    Returns a logically identical array whose *memory* is contiguous in
    ``(l, d, j, h)`` order, which makes :func:`predict_vectors`'s einsum
    ~3.5x faster (measured) while -- verified across the experiment geometry
    grid -- leaving its output bits unchanged.
    """
    return np.ascontiguousarray(weight.transpose(0, 2, 1, 3)).transpose(0, 2, 1, 3)


def predict_vectors(u: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Prediction vectors ``u_hat = u x W`` (Eq. 1).

    Bit-identical to the naive ``np.einsum("bld,ljdh->bljh", u, weight)``:
    the same einsum runs on a cache-friendly relayout of ``weight``.

    Args:
        u: low-level capsules ``(batch, num_low, low_dim)``.
        weight: transform tensor ``(num_low, num_high, low_dim, high_dim)``.

    Returns:
        ``(batch, num_low, num_high, high_dim)`` float32.
    """
    return np.einsum("bld,ljdh->bljh", u, routing_weight_view(weight))


def weighted_sum(u_hat: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Routing weighted sum ``s_j = sum_i c_ij u_hat_{j|i}`` (Eq. 2).

    Bit-identical to the naive broadcast-multiply-then-sum::

        np.sum(u_hat * c[np.newaxis, :, :, np.newaxis], axis=1, dtype=np.float32)

    (or the per-batch variant for 3-D ``c``), but fused into one einsum that
    never materializes the ``(batch, num_low, num_high, high_dim)``
    temporary and accumulates over ``l`` in the same order.

    Args:
        u_hat: prediction vectors ``(batch, num_low, num_high, high_dim)``.
        coefficients: routing coefficients ``(num_low, num_high)`` (shared
            across the batch) or ``(batch, num_low, num_high)``.
    """
    if coefficients.ndim == 2:
        return np.einsum("bljh,lj->bjh", u_hat, coefficients)
    return np.einsum("bljh,blj->bjh", u_hat, coefficients)


def agreement(u_hat: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Routing agreement ``a_ij = v_j . u_hat_{j|i}`` (Eq. 4 inner product).

    The naive einsum is already the fastest bit-stable form (every operand
    relayout measured either slower or bit-different); this wrapper only
    removes the redundant ``astype(np.float32)`` copy the call sites paid.
    """
    return np.einsum("bljh,bjh->blj", u_hat, v)


def capsule_grad_u_hat(grad_s: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Gradient wrt the prediction vectors: ``g_u_hat = c * grad_s`` broadcast.

    Element-wise identical to the naive broadcast multiply, but written into
    a buffer whose *memory* is contiguous in ``(l, j, b, h)`` order -- the
    layout on which both downstream contractions
    (:func:`capsule_weight_gradient`, :func:`capsule_input_gradient`) run
    fastest without changing bits.  Element-wise ops are layout-independent,
    so this needs no empirical gate.

    Args:
        grad_s: squash-input gradient ``(batch, num_high, high_dim)``.
        coefficients: ``(num_low, num_high)`` or ``(batch, num_low, num_high)``.

    Returns:
        Logical ``(batch, num_low, num_high, high_dim)`` float32 (strided).
    """
    batch, num_high, high_dim = grad_s.shape
    num_low = coefficients.shape[-2]
    buffer = np.empty((num_low, num_high, batch, high_dim), dtype=np.float32)
    view = buffer.transpose(2, 0, 1, 3)
    if coefficients.ndim == 2:
        np.multiply(
            grad_s[:, np.newaxis, :, :], coefficients[np.newaxis, :, :, np.newaxis], out=view
        )
    else:
        np.multiply(grad_s[:, np.newaxis, :, :], coefficients[:, :, :, np.newaxis], out=view)
    return view


def capsule_weight_gradient(u: np.ndarray, grad_u_hat: np.ndarray) -> np.ndarray:
    """Weight gradient ``dL/dW = sum_b u_i (x) g_u_hat_ij`` of Eq. 1.

    Bit-identical to ``np.einsum("bld,bljh->ljdh", u, grad_u_hat)``; the
    speedup comes from relaying ``u`` out ``(l, b, d)``-contiguous and from
    ``grad_u_hat`` arriving ``(l, j, b, h)``-contiguous from
    :func:`capsule_grad_u_hat` (both verified bit-stable on the grid).
    """
    u_fast = np.ascontiguousarray(u.transpose(1, 0, 2)).transpose(1, 0, 2)
    return np.einsum("bld,bljh->ljdh", u_fast, grad_u_hat)


def capsule_input_gradient(grad_u_hat: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Input gradient ``dL/du = sum_jh g_u_hat_ij W_ij`` of Eq. 1.

    Bit-identical to ``np.einsum("bljh,ljdh->bld", grad_u_hat, weight)``.
    Every relayout of ``weight`` changed output bits on some grid geometry
    (rejected); the only shipped optimization is that ``grad_u_hat`` arrives
    ``(l, j, b, h)``-contiguous, which the grid tests lock in.
    """
    return np.einsum("bljh,ljdh->bld", grad_u_hat, weight)
