"""A small SGD trainer for the functional CapsNet model.

The trainer exists so the Table-5 accuracy experiments can produce trained
networks entirely offline: it minimizes the margin loss (plus a small
reconstruction term when the decoder is enabled) with SGD + momentum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.capsnet import functions as F
from repro.capsnet.datasets import SyntheticImageDataset
from repro.capsnet.model import CapsNet

#: Process-wide count of executed training steps.  The trained-model disk
#: cache promises that warm runs execute *zero* steps; the benchmark harness
#: and the cache tests assert that through this counter instead of timing.
_TRAIN_STEPS_EXECUTED = 0


def train_steps_executed() -> int:
    """Total :meth:`Trainer.train_step` invocations in this process."""
    return _TRAIN_STEPS_EXECUTED


def reset_train_step_count() -> None:
    """Reset the process-wide training-step counter (tests / benchmarks)."""
    global _TRAIN_STEPS_EXECUTED
    _TRAIN_STEPS_EXECUTED = 0


@dataclass
class TrainingResult:
    """Summary of a training run.

    Attributes:
        epoch_losses: mean training loss per epoch.
        train_accuracy: final accuracy on the training split (``nan`` when
            the fit ran with ``evaluate=False``).
        test_accuracy: final accuracy on the test split (``nan`` when the
            fit ran with ``evaluate=False``).
        epochs: number of epochs executed.
    """

    epoch_losses: List[float]
    train_accuracy: float
    test_accuracy: float
    epochs: int


@dataclass
class Trainer:
    """SGD / Adam trainer for :class:`~repro.capsnet.model.CapsNet`.

    Args:
        model: the CapsNet to train.
        learning_rate: optimizer step size.
        momentum: classical momentum coefficient (SGD only).
        optimizer: ``"sgd"`` (momentum SGD) or ``"adam"`` (Adam, the optimizer
            Sabour et al. use; converges much faster on the small synthetic
            accuracy experiments).
        reconstruction_weight: weight of the reconstruction loss term
            (0.0005 in Sabour et al.; set to 0 to disable).
        grad_clip: element-wise gradient clipping threshold (0 disables).
        seed: RNG seed controlling batch shuffling.
    """

    model: CapsNet
    learning_rate: float = 0.05
    momentum: float = 0.9
    optimizer: str = "sgd"
    reconstruction_weight: float = 0.0005
    grad_clip: float = 5.0
    seed: int = 11
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_epsilon: float = 1e-8
    _velocity: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict, init=False)
    _adam_m: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict, init=False)
    _adam_v: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict, init=False)
    _adam_step: int = field(default=0, init=False)
    #: Training steps this trainer instance has executed.
    steps_executed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}; use 'sgd' or 'adam'")

    # -- single step ----------------------------------------------------------

    def train_step(
        self, images: np.ndarray, labels_onehot: np.ndarray
    ) -> float:
        """Run one forward/backward/update step and return the batch loss."""
        global _TRAIN_STEPS_EXECUTED
        _TRAIN_STEPS_EXECUTED += 1
        self.steps_executed += 1
        self.model.zero_grads()
        run_decoder = self.reconstruction_weight > 0 and bool(self.model.decoder_layers)
        result = self.model.forward(images, labels_onehot=labels_onehot, run_decoder=run_decoder)
        loss = F.margin_loss(result.lengths, labels_onehot)
        if run_decoder and result.reconstruction is not None:
            flat = np.asarray(images, dtype=np.float32).reshape(images.shape[0], -1)
            loss += self.reconstruction_weight * F.reconstruction_loss(result.reconstruction, flat)
        self.model.backward_from_losses(
            result, labels_onehot, images, reconstruction_weight=self.reconstruction_weight
        )
        self._apply_update()
        return float(loss)

    def _apply_update(self) -> None:
        if self.optimizer == "adam":
            self._apply_adam()
        else:
            self._apply_sgd()

    # Both update rules run in place on the persistent optimizer state: the
    # element-wise operation order matches the old allocate-per-step
    # expressions exactly (bit-identical updates), it just stops allocating a
    # handful of parameter-sized temporaries per step.

    def _apply_sgd(self) -> None:
        for layer_id, layer in enumerate(self.model.trainable_layers):
            velocity = self._velocity.setdefault(layer_id, {})
            for name, grad in layer.grads.items():
                if self.grad_clip > 0:
                    np.clip(grad, -self.grad_clip, self.grad_clip, out=grad)
                v = velocity.get(name)
                if v is None:
                    v = np.zeros_like(grad)
                    velocity[name] = v
                # v = momentum * v - learning_rate * grad
                v *= self.momentum
                v -= self.learning_rate * grad
                layer.params[name] += v

    def _apply_adam(self) -> None:
        self._adam_step += 1
        t = self._adam_step
        bias1 = 1.0 - self.adam_beta1**t
        bias2 = 1.0 - self.adam_beta2**t
        for layer_id, layer in enumerate(self.model.trainable_layers):
            m_state = self._adam_m.setdefault(layer_id, {})
            v_state = self._adam_v.setdefault(layer_id, {})
            for name, grad in layer.grads.items():
                if self.grad_clip > 0:
                    np.clip(grad, -self.grad_clip, self.grad_clip, out=grad)
                m = m_state.get(name)
                v = v_state.get(name)
                if m is None:
                    m = np.zeros_like(grad)
                    v = np.zeros_like(grad)
                    m_state[name] = m
                    v_state[name] = v
                # m = beta1 * m + (1 - beta1) * grad
                m *= self.adam_beta1
                m += (1.0 - self.adam_beta1) * grad
                # v = beta2 * v + (1 - beta2) * grad * grad
                v *= self.adam_beta2
                v += (1.0 - self.adam_beta2) * grad * grad
                # params -= learning_rate * m_hat / (sqrt(v_hat) + eps)
                denominator = v / bias2
                np.sqrt(denominator, out=denominator)
                denominator += self.adam_epsilon
                update = m / bias1
                update *= self.learning_rate
                update /= denominator
                layer.params[name] -= update

    # -- full training loop ---------------------------------------------------

    def fit(
        self,
        dataset: SyntheticImageDataset,
        epochs: int = 3,
        batch_size: int = 16,
        verbose: bool = False,
        evaluate: bool = True,
    ) -> TrainingResult:
        """Train on the dataset's training split and evaluate on the test split.

        Args:
            dataset: the synthetic dataset to fit.
            epochs: full passes over the training split.
            batch_size: mini-batch size.
            verbose: print per-epoch losses.
            evaluate: compute the final train/test accuracies.  Callers that
                run their own (e.g. multi-context) evaluation pass ``False``
                to skip the two full-dataset inference passes; the returned
                accuracies are then ``nan``.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        rng = np.random.default_rng(self.seed)
        epoch_losses: List[float] = []
        for epoch in range(epochs):
            losses: List[float] = []
            for images, _, onehot in dataset.train_batches(batch_size, rng=rng):
                losses.append(self.train_step(images, onehot))
            epoch_loss = float(np.mean(losses)) if losses else 0.0
            epoch_losses.append(epoch_loss)
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1}/{epochs}: loss={epoch_loss:.4f}")

        if evaluate:
            train_acc = self.model.accuracy(dataset.train_images, dataset.train_labels)
            test_images, test_labels = dataset.test_set()
            test_acc = self.model.accuracy(test_images, test_labels)
        else:
            train_acc = test_acc = float("nan")
        return TrainingResult(
            epoch_losses=epoch_losses,
            train_accuracy=train_acc,
            test_accuracy=test_acc,
            epochs=epochs,
        )
