"""Deterministic synthetic datasets standing in for the paper's benchmarks.

The paper evaluates on MNIST, CIFAR10, three EMNIST splits and SVHN.  Those
datasets are not available offline in this environment, so this module
generates *class-structured synthetic images* with the same tensor shapes and
class counts: each class owns a smooth random prototype image and samples are
noisy, slightly shifted copies of the prototype.  This preserves what the
accuracy experiments need -- a classification task the CapsNet can actually
learn -- while keeping everything deterministic and offline.

See DESIGN.md ("Substitutions") for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.capsnet.functions import one_hot


@dataclass(frozen=True)
class DatasetSpec:
    """Shape-level description of an image classification dataset.

    Attributes:
        name: dataset name as used in the paper (e.g. ``"MNIST"``).
        image_shape: ``(channels, height, width)``.
        num_classes: number of target classes.
    """

    name: str
    image_shape: Tuple[int, int, int]
    num_classes: int

    @property
    def pixels(self) -> int:
        """Total number of scalar pixels per image."""
        c, h, w = self.image_shape
        return c * h * w

    def content_hash(self) -> str:
        """Content hash (SHA-256 hex) of everything that shapes the dataset.

        Together with the synthetic generator parameters this fully
        determines the generated samples, so the trained-model disk cache
        keys on it: two specs that differ in any field (including the name,
        which seeds the prototypes indirectly through none of the fields --
        but keeps user-named custom datasets from aliasing) hash apart.
        """
        from repro.engine.diskcache import canonical_digest

        return canonical_digest(
            {
                "name": self.name,
                "image_shape": list(self.image_shape),
                "num_classes": self.num_classes,
            }
        )


#: Dataset specs for all datasets referenced in Table 1 of the paper.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "MNIST": DatasetSpec("MNIST", (1, 28, 28), 10),
    "CIFAR10": DatasetSpec("CIFAR10", (3, 32, 32), 10),
    "EMNIST-LETTER": DatasetSpec("EMNIST-LETTER", (1, 28, 28), 26),
    "EMNIST-BALANCED": DatasetSpec("EMNIST-BALANCED", (1, 28, 28), 47),
    "EMNIST-BYCLASS": DatasetSpec("EMNIST-BYCLASS", (1, 28, 28), 62),
    "SVHN": DatasetSpec("SVHN", (3, 32, 32), 10),
}


def _smooth(image: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap box-blur so class prototypes have spatial structure, not white noise."""
    out = image.astype(np.float32)
    for _ in range(passes):
        padded = np.pad(out, ((0, 0), (1, 1), (1, 1)), mode="edge")
        out = (
            padded[:, :-2, 1:-1]
            + padded[:, 2:, 1:-1]
            + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:]
            + padded[:, 1:-1, 1:-1]
        ) / 5.0
    return out


class SyntheticImageDataset:
    """Class-structured synthetic image dataset.

    Each class ``k`` owns a smooth prototype image ``P_k``; a sample of class
    ``k`` is ``clip(P_k shifted by a small random offset + noise)``.  The
    prototypes are well separated so a small CapsNet reaches high accuracy in
    a few epochs, which is what the Table-5 style accuracy comparison needs.

    Args:
        spec: shape-level description of the dataset.
        num_train: number of training samples.
        num_test: number of test samples.
        noise_level: standard deviation of the additive pixel noise.
        max_shift: maximum absolute spatial shift (pixels) applied per sample.
        seed: RNG seed; the dataset is fully determined by its arguments.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        num_train: int = 512,
        num_test: int = 256,
        noise_level: float = 0.08,
        max_shift: int = 1,
        seed: int = 7,
    ) -> None:
        if num_train < spec.num_classes or num_test < spec.num_classes:
            raise ValueError("need at least one sample per class in each split")
        self.spec = spec
        self.noise_level = float(noise_level)
        self.max_shift = int(max_shift)
        rng = np.random.default_rng(seed)
        self._prototypes = self._make_prototypes(rng)
        self.train_images, self.train_labels = self._make_split(rng, num_train)
        self.test_images, self.test_labels = self._make_split(rng, num_test)

    # -- construction --------------------------------------------------------

    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        channels, height, width = self.spec.image_shape
        prototypes = np.zeros((self.spec.num_classes, channels, height, width), dtype=np.float32)
        yy, xx = np.mgrid[0:height, 0:width]
        cells = 4  # the image is divided into a cells x cells on/off pattern
        cell_h = max(1, height // cells)
        cell_w = max(1, width // cells)
        for k in range(self.spec.num_classes):
            # A class-specific on/off cell pattern provides a strong, spatially
            # structured signature (think of a smoothed QR code), which keeps
            # the synthetic classification task learnable even for the
            # 47/62-class EMNIST substitutes.
            pattern = rng.random((cells, cells)) < 0.5
            cell_image = np.zeros((height, width), dtype=np.float32)
            for cy_idx in range(cells):
                for cx_idx in range(cells):
                    if pattern[cy_idx, cx_idx]:
                        cell_image[
                            cy_idx * cell_h : min(height, (cy_idx + 1) * cell_h),
                            cx_idx * cell_w : min(width, (cx_idx + 1) * cell_w),
                        ] = 1.0
            cell_image = _smooth(cell_image[np.newaxis, :, :], passes=1)[0]
            # Add a distinctive bright blob at a class-specific location.
            cy = int((k * 7919) % (height - 6)) + 3
            cx = int((k * 104729) % (width - 6)) + 3
            blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / 18.0)).astype(np.float32)
            texture = _smooth(
                rng.uniform(0.0, 1.0, size=(channels, height, width)).astype(np.float32), passes=2
            )
            proto = 0.15 * texture + 0.65 * cell_image[np.newaxis, :, :] + 0.4 * blob[np.newaxis, :, :]
            prototypes[k] = np.clip(proto, 0.0, 1.0)
        return prototypes

    def _make_split(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count, dtype=np.int64) % self.spec.num_classes
        rng.shuffle(labels)
        channels, height, width = self.spec.image_shape
        images = np.zeros((count, channels, height, width), dtype=np.float32)
        for idx, label in enumerate(labels):
            proto = self._prototypes[label]
            dy = int(rng.integers(-self.max_shift, self.max_shift + 1))
            dx = int(rng.integers(-self.max_shift, self.max_shift + 1))
            shifted = np.roll(np.roll(proto, dy, axis=1), dx, axis=2)
            noisy = shifted + rng.normal(0.0, self.noise_level, size=proto.shape)
            images[idx] = np.clip(noisy, 0.0, 1.0)
        return images, labels

    # -- access ---------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def train_batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield shuffled ``(images, labels, onehot)`` training mini-batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.train_images.shape[0])
        (rng or np.random.default_rng(0)).shuffle(order)
        for start in range(0, order.size, batch_size):
            idx = order[start : start + batch_size]
            labels = self.train_labels[idx]
            yield (
                self.train_images[idx],
                labels,
                one_hot(labels, self.spec.num_classes),
            )

    def test_set(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full held-out test split ``(images, labels)``."""
        return self.test_images, self.test_labels


def dataset_for_spec(
    spec: DatasetSpec,
    num_train: int = 512,
    num_test: int = 256,
    seed: int = 7,
) -> SyntheticImageDataset:
    """Build the synthetic dataset for any shape-level dataset spec.

    Works for the Table-1 datasets and for the inline custom datasets of
    user-defined :class:`~repro.workloads.catalog.WorkloadSpec` workloads:
    the synthetic generator only needs the image shape and the class count.
    """
    return SyntheticImageDataset(spec, num_train=num_train, num_test=num_test, seed=seed)


def dataset_for_benchmark(
    dataset_name: str,
    num_train: int = 512,
    num_test: int = 256,
    seed: int = 7,
) -> SyntheticImageDataset:
    """Build the synthetic dataset for a paper dataset name (case-insensitive)."""
    key = dataset_name.strip().upper().replace(" ", "-").replace("_", "-")
    if key not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {dataset_name!r}; known: {sorted(DATASET_SPECS)}"
        )
    return dataset_for_spec(DATASET_SPECS[key], num_train=num_train, num_test=num_test, seed=seed)
