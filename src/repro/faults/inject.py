"""The injection hook: arming, counting, and firing fault rules.

The hardened modules call :func:`point` at each named fault site.  With no
plan armed the call is two dict lookups; with a plan armed the first rule
matching the point consumes one call from its counter window and, when the
window says so, fires:

* ``error``    -- raises :class:`OSError` with the rule's errno (so
  ``ENOSPC`` arrives as the real :class:`OSError` subclass the production
  error paths see).
* ``truncate`` -- tears the file the site passed as ``path`` (simulating a
  torn write that an atomic-publish bug would expose).
* ``crash``    -- ``SIGKILL``s the current process: uncatchable, exactly
  like a power cut, an OOM kill, or a ``kill -9`` on a sweep worker.
* ``sleep``    -- stalls via the injectable sleep hook (tests swap it out,
  so even "slow I/O" is deterministic).

Arming routes:

* :func:`activate` / :func:`deactivate` (or the :func:`injected` context
  manager) -- in-process, used by tests and the CLI.
* The ``REPRO_FAULTS`` environment variable -- checked lazily on every
  :func:`point` call (cheap string compare), so worker *processes* spawned
  by a pool or a CLI subprocess inherit the plan with zero plumbing.
  ``activate(plan, export=True)`` sets the variable for child processes.

All counter state lives behind a module lock; counters reset whenever the
armed plan changes, so each activation replays from call zero.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, Dict, Optional

from repro.faults.plan import FAULT_POINTS, FaultPlan, FaultRule

#: Environment variable carrying an inline-JSON fault plan or a plan-file path.
FAULTS_ENV = "REPRO_FAULTS"

_LOCK = threading.Lock()
#: The armed plan (explicit activation wins over the environment).
_PLAN: Optional[FaultPlan] = None
_EXPLICIT = False
#: The REPRO_FAULTS text the current env-loaded plan was parsed from.
_ENV_TEXT: Optional[str] = None
#: rule index -> matching calls seen so far.
_CALLS: Dict[int, int] = {}
#: fault point name -> faults actually fired (for tests/diagnostics).
_FIRED: Dict[str, int] = {}
#: Injectable sleep hook for the ``sleep`` action.
_SLEEP: Callable[[float], None] = time.sleep


def activate(plan: FaultPlan, *, export: bool = False) -> None:
    """Arm ``plan`` in this process (counters reset to zero).

    With ``export=True`` the plan is also written to ``REPRO_FAULTS`` so
    child processes (pool workers, CLI subprocesses) inherit it.
    """
    global _PLAN, _EXPLICIT
    with _LOCK:
        _PLAN = plan
        _EXPLICIT = True
        _CALLS.clear()
        _FIRED.clear()
    if export:
        os.environ[FAULTS_ENV] = plan.to_json()


def deactivate() -> None:
    """Disarm any explicit plan and forget the env-derived one."""
    global _PLAN, _EXPLICIT, _ENV_TEXT
    with _LOCK:
        _PLAN = None
        _EXPLICIT = False
        _ENV_TEXT = None
        _CALLS.clear()
        _FIRED.clear()


class injected:
    """Context manager arming a plan for a ``with`` block (tests)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        activate(self.plan)
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        deactivate()


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan (explicit or env-derived), if any."""
    return _resolve_plan()


def fired_counts() -> Dict[str, int]:
    """How many faults each point has fired since the last (re)arming."""
    with _LOCK:
        return dict(_FIRED)


def set_sleep(sleep: Callable[[float], None]) -> None:
    """Swap the ``sleep`` action's clock hook (tests inject a recorder)."""
    global _SLEEP
    with _LOCK:
        _SLEEP = sleep


def _resolve_plan() -> Optional[FaultPlan]:
    """The armed plan, re-reading ``REPRO_FAULTS`` when its text changed."""
    global _PLAN, _ENV_TEXT
    if _EXPLICIT:
        return _PLAN
    text = os.environ.get(FAULTS_ENV)
    if text == _ENV_TEXT:
        return _PLAN
    plan = FaultPlan.load(text) if text else None
    with _LOCK:
        if _EXPLICIT:
            return _PLAN
        _ENV_TEXT = text
        _PLAN = plan
        _CALLS.clear()
        _FIRED.clear()
        return _PLAN


def point(name: str, path: Optional[object] = None) -> None:
    """One named fault site; a no-op unless an armed rule fires here.

    Args:
        name: a key of :data:`~repro.faults.plan.FAULT_POINTS` (anything
            else raises -- call-site typos must not silently never fire).
        path: the file the site is about to publish/read, consumed by the
            ``truncate`` action.
    """
    if name not in FAULT_POINTS:
        raise ValueError(
            f"unregistered fault point {name!r}; registered: {sorted(FAULT_POINTS)}"
        )
    plan = _resolve_plan()
    if plan is None:
        return
    fired: Optional[FaultRule] = None
    with _LOCK:
        for index, rule in enumerate(plan.rules):
            if not rule.matches(name):
                continue
            seen = _CALLS.get(index, 0)
            _CALLS[index] = seen + 1
            if rule.triggers(seen):
                fired = rule
                _FIRED[name] = _FIRED.get(name, 0) + 1
            break  # the first matching rule owns the point
    if fired is not None:
        _fire(fired, name, path)


def _fire(rule: FaultRule, name: str, path: Optional[object]) -> None:
    if rule.action == "error":
        code = rule.errno_code
        raise OSError(code, f"{os.strerror(code)} [injected at {name}]")
    if rule.action == "truncate":
        _truncate(path, rule.keep_bytes)
        return
    if rule.action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover - unreachable
    if rule.action == "sleep":
        _SLEEP(rule.seconds)


def _truncate(path: Optional[object], keep_bytes: Optional[int]) -> None:
    """Tear the file at ``path`` (no-op when the site passed no file)."""
    if path is None:
        return
    try:
        with open(os.fspath(path), "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            keep = size // 2 if keep_bytes is None else min(keep_bytes, size)
            handle.truncate(keep)
    except OSError:
        # The file vanished or is unwritable: the torn write simply did
        # not happen, which is a legal outcome of the simulated fault.
        return
