"""The shared retry helper for transient cache/queue/lease I/O.

Every hardened write path (shard flushes, model publishes, done-files,
heartbeats -- rule RPR-T003 enforces this) funnels through
:func:`with_retries`: up to ``attempts`` tries with deterministic
exponential backoff (``base_delay * 2**attempt``, no jitter -- replays are
byte-identical) through an injectable ``sleep`` hook, so tests pay zero
wall clock.

Not every :class:`OSError` deserves a retry: :data:`FATAL_ERRNOS`
(``ENOSPC``, ``EDQUOT``, ``EACCES``, ``EPERM``, ``EROFS``) describe a disk
that will refuse the write *every* time, so they fail fast and the caller
degrades (the caches flip to read-only) instead of burning the backoff
budget on a full disk.
"""

from __future__ import annotations

import errno
import time
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

#: Default attempt budget for transient I/O.
DEFAULT_ATTEMPTS = 3

#: First backoff delay in seconds; doubles per attempt (0.01, 0.02, 0.04...).
DEFAULT_BASE_DELAY = 0.01

#: Errnos that no retry can fix: the disk is full or the path is forbidden.
FATAL_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EACCES, errno.EPERM, errno.EROFS}
)


def is_fatal_io(error: BaseException) -> bool:
    """True for :class:`OSError`\\ s that retrying cannot fix."""
    return isinstance(error, OSError) and error.errno in FATAL_ERRNOS


def with_retries(
    fn: Callable[[], T],
    *,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    sleep: Optional[Callable[[float], None]] = None,
) -> T:
    """Run ``fn`` with deterministic backoff on transient :class:`OSError`.

    Fatal errnos (:data:`FATAL_ERRNOS`) and the final attempt's error
    propagate unchanged; non-``OSError`` exceptions are never retried.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    wait = time.sleep if sleep is None else sleep
    for attempt in range(attempts):
        try:
            return fn()
        except OSError as error:
            if is_fatal_io(error) or attempt == attempts - 1:
                raise
            wait(base_delay * (2 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover
