"""Fault plans: what fails, how, and on which call -- as replayable data.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries.  Each rule
names a registered fault point (or an ``fnmatch`` pattern over them, e.g.
``diskcache.*``), an action, and a *call-count window*: the rule fires on
calls ``after <= n < after + times`` of the matching point (0-indexed,
``times=None`` meaning forever).  Triggers are pure counters -- no wall
clock, no randomness -- so arming the same plan against the same workload
reproduces the same failures byte-identically.

Plans round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) and load from either inline JSON or a file
path (:meth:`FaultPlan.load`), which is exactly what the ``REPRO_FAULTS``
environment variable accepts::

    REPRO_FAULTS='{"rules": [{"point": "queue.done.publish", "action": "crash"}]}'

Validation is strict and early: unknown points, actions or errno names
raise :class:`ValueError` at construction, never silently no-op at the
fault site.
"""

from __future__ import annotations

import errno
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Optional, Tuple

#: Schema version of the plan's JSON shape.
PLAN_SCHEMA_VERSION = 1

#: Every registered fault point, with the failure it simulates.  The
#: injection hook rejects unregistered names, so a typo at a call site (or
#: in a plan) fails loudly instead of never firing.
FAULT_POINTS: Dict[str, str] = {
    "diskcache.shard.read": "reading a simulation-cache shard from disk",
    "diskcache.flush.write": "writing a shard temp file during flush (torn writes)",
    "diskcache.flush.replace": "atomically publishing a shard via os.replace",
    "modelcache.read": "reading a trained-model artifact from disk",
    "modelcache.write": "writing a model temp file during put (torn writes)",
    "modelcache.replace": "atomically publishing a model artifact via os.replace",
    "queue.lease.claim": "creating a shard lease file (O_CREAT|O_EXCL)",
    "queue.shard.execute": "executing a claimed shard's grid slice",
    "queue.done.publish": "publishing a shard's done-file (torn writes)",
    "queue.heartbeat.write": "writing/refreshing a worker heartbeat file",
    "sweep.point.execute": "executing one scalar sweep point",
    "serve.handler.execute": "executing a serve run/compare handler body",
}

#: The supported fault actions.
ACTIONS: Tuple[str, ...] = ("error", "truncate", "crash", "sleep")


@dataclass(frozen=True)
class FaultRule:
    """One injected failure.

    Attributes:
        point: registered fault-point name or ``fnmatch`` pattern over them
            (must match at least one registered point).
        action: ``error`` raises :class:`OSError` with errno ``error``;
            ``truncate`` tears the file the fault site is about to publish
            (keeps ``keep_bytes`` bytes, half the file by default);
            ``crash`` SIGKILLs the current process (uncatchable, like a
            power cut or an OOM kill); ``sleep`` stalls for ``seconds``
            through the injectable sleep hook.
        error: errno symbol for ``action="error"`` (``"EIO"``, ``"ENOSPC"``,
            ``"EACCES"``, ...).
        after: matching calls to skip before firing (0 = fire on the first).
        times: how many consecutive matching calls fire (``None`` = forever).
        seconds: stall duration for ``action="sleep"``.
        keep_bytes: bytes kept by ``action="truncate"`` (``None`` = half).
    """

    point: str
    action: str = "error"
    error: str = "EIO"
    after: int = 0
    times: Optional[int] = 1
    seconds: float = 0.0
    keep_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from {list(ACTIONS)}"
            )
        if not any(fnmatchcase(name, self.point) for name in FAULT_POINTS):
            raise ValueError(
                f"fault point pattern {self.point!r} matches no registered "
                f"point; registered: {sorted(FAULT_POINTS)}"
            )
        if self.action == "error":
            self.errno_code  # validates the symbol
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or null, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    @property
    def errno_code(self) -> int:
        """The numeric errno behind the rule's ``error`` symbol."""
        code = getattr(errno, self.error, None)
        if not isinstance(code, int):
            raise ValueError(f"unknown errno symbol {self.error!r}")
        return code

    def matches(self, name: str) -> bool:
        """True when this rule covers the named fault point."""
        return fnmatchcase(name, self.point)

    def triggers(self, seen: int) -> bool:
        """True when the ``seen``-th matching call (0-indexed) should fire."""
        if seen < self.after:
            return False
        return self.times is None or seen < self.after + self.times

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "action": self.action,
            "error": self.error,
            "after": self.after,
            "times": self.times,
            "seconds": self.seconds,
            "keep_bytes": self.keep_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        if not isinstance(payload, dict):
            raise ValueError(f"fault rule must be an object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - {
            "point", "action", "error", "after", "times", "seconds", "keep_bytes"
        })
        if unknown:
            raise ValueError(f"unknown fault rule key(s): {unknown}")
        if "point" not in payload:
            raise ValueError("fault rule is missing the required 'point' key")
        return cls(
            point=str(payload["point"]),
            action=str(payload.get("action", "error")),
            error=str(payload.get("error", "EIO")),
            after=int(payload.get("after", 0)),
            times=(
                None
                if payload.get("times", 1) is None
                else int(payload.get("times", 1))
            ),
            seconds=float(payload.get("seconds", 0.0)),
            keep_bytes=(
                None
                if payload.get("keep_bytes") is None
                else int(payload["keep_bytes"])
            ),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules; the first matching rule owns a point."""

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan must be an object, got {type(payload).__name__}")
        schema = payload.get("schema", PLAN_SCHEMA_VERSION)
        if schema != PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fault plan schema {schema!r} "
                f"(this build reads schema {PLAN_SCHEMA_VERSION})"
            )
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("fault plan 'rules' must be a list")
        return cls(rules=tuple(FaultRule.from_dict(rule) for rule in rules))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def load(cls, source: str) -> "FaultPlan":
        """A plan from inline JSON (leading ``{``) or a plan-file path."""
        stripped = source.strip()
        if stripped.startswith("{"):
            return cls.from_json(stripped)
        try:
            with open(source, encoding="utf-8") as stream:
                text = stream.read()
        except OSError as error:
            raise ValueError(
                f"fault plan source {source!r} is neither inline JSON nor a "
                f"readable file: {error}"
            ) from error
        return cls.from_json(text)
