"""Deterministic fault injection for the persistence/coordination layers.

The disk caches (:mod:`repro.engine.diskcache`), the sharded work queue
(:mod:`repro.sweep.queue`) and the HTTP service (:mod:`repro.serve`) all
promise graceful degradation under real-world failures -- torn writes,
``ENOSPC``, a worker killed on another host, a handler that never returns.
This package makes every one of those failures *provokable on demand and
deterministically*, so the hardening they motivate is testable instead of
aspirational:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultRule`
  -- a JSON-round-trippable description of which registered fault point
  misbehaves, how (``error`` / ``truncate`` / ``crash`` / ``sleep``), and on
  which call (``after`` / ``times`` counters -- never wall clock, so a plan
  replays byte-identically).
* :func:`~repro.faults.inject.point` -- the zero-cost-when-disarmed hook the
  hardened modules call at each named fault point
  (:data:`~repro.faults.plan.FAULT_POINTS` is the registry).
* Arming: :func:`~repro.faults.inject.activate` in tests, or the
  :data:`~repro.faults.inject.FAULTS_ENV` (``REPRO_FAULTS``) environment
  variable holding inline JSON or a plan-file path -- the env route crosses
  process boundaries, so pool workers and CLI subprocesses inherit the plan.
* :func:`~repro.faults.retry.with_retries` -- the shared deterministic
  retry/backoff helper the hardened write paths go through (rule RPR-T003
  keeps them honest).

Everything here is stdlib-only and safe to import from any layer.
"""

from repro.faults.inject import (
    FAULTS_ENV,
    activate,
    active_plan,
    deactivate,
    fired_counts,
    injected,
    point,
)
from repro.faults.plan import ACTIONS, FAULT_POINTS, FaultPlan, FaultRule
from repro.faults.retry import (
    DEFAULT_ATTEMPTS,
    DEFAULT_BASE_DELAY,
    FATAL_ERRNOS,
    is_fatal_io,
    with_retries,
)

__all__ = [
    "ACTIONS",
    "DEFAULT_ATTEMPTS",
    "DEFAULT_BASE_DELAY",
    "FATAL_ERRNOS",
    "FAULTS_ENV",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "activate",
    "active_plan",
    "deactivate",
    "fired_counts",
    "injected",
    "is_fatal_io",
    "point",
    "with_retries",
]
