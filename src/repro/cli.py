"""Command line interface for the PIM-CapsNet reproduction.

Nine subcommands cover the common workflows::

    python -m repro characterize [--benchmarks ...]      # Figs. 4-7 (GPU bottleneck)
    python -m repro evaluate [--benchmarks ...]          # Figs. 15-17 (PIM-CapsNet)
    python -m repro sweep [--spec S | --axis K=V1,V2]    # design-space sweeps (Fig. 18)
    python -m repro optimize --objective M [--axis ...]  # design-space search (DSE)
    python -m repro reproduce [--skip ...] [--only ...]  # everything via the engine
    python -m repro compare --scenario A --scenario B    # N scenarios side by side
    python -m repro workloads list|show NAME             # the workload catalog
    python -m repro serve [--host H] [--port P]          # HTTP/JSON service
    python -m repro check [PATHS ...]                    # static analysis (lint)

``optimize`` searches the grid ``--spec``/``--axis`` declare instead of
enumerating it: repeatable ``--objective METRIC[:max|min]`` options name
dotted metric paths into the experiments' headline numbers
(``fig17.average_speedup``, ``overhead.total_area_mm2``), repeatable
``--constraint METRIC:OP=VALUE`` options restrict the feasible set
(``fig17.average_speedup:within_pct_of_best=5``), and the adaptive drivers
(coordinate descent, successive halving) find the Pareto frontier and the
best probe per objective in a fraction of the grid.  Probes share the sweep
cache, so repeated searches execute zero simulations.

``serve`` starts the long-running HTTP/JSON simulation service
(:mod:`repro.serve`): ``POST /v1/run`` / ``/v1/compare`` answer the same
reports the CLI prints, ``POST /v1/sweep`` streams NDJSON progress events,
and ``GET /healthz`` / ``GET /metrics`` expose liveness and counters.
Handler threads share warm per-scenario sessions plus the persistent disk
caches, identical in-flight requests coalesce onto one underlying run, and
SIGINT/SIGTERM drain in-flight work before exiting 0.

``sweep`` without ``--spec``/``--axis`` prints the classic Fig. 18 frequency
heat map.  With them it runs a generalized design-space sweep: every axis is
a dotted scenario override path with the values to try, the grid is their
cartesian product, points execute process-parallel (``--jobs``/``--executor``)
and every simulation is memoized in a persistent on-disk cache
(``--cache-dir``, ``--no-cache``), so repeated and overlapping sweeps are
incremental -- a fully warm sweep executes zero simulations.  Execution
statistics (cache hits/misses, wall clock) go to stderr; stdout stays
byte-identical between cold and warm runs.

Every command prints the same plain-text tables the benchmark harness writes
to ``benchmarks/reports/`` by default; ``--format json`` emits the
experiments' structured ``to_dict()`` output instead, and ``--output PATH``
writes either format to a file.

Every command also accepts a hardware scenario: ``--scenario PATH|PRESET``
loads a preset (``paper-default``, ``v100-host``, ...) or a JSON scenario
file, and repeatable ``--set KEY=VALUE`` options apply dotted-path overrides
(``--set hmc.pe_frequency_mhz=625 --set gpu=V100``).  ``compare`` runs the
selected experiments under several scenarios concurrently (one cached
simulation context each) and renders a side-by-side delta table; with a
single ``--scenario`` plus ``--set`` it compares the base scenario against
the overridden variant.

The *workload* axis is just as open as the hardware axis: a repeatable
``--workload PATH`` option on every subcommand merges user-defined capsule
networks (:class:`~repro.workloads.catalog.WorkloadSpec` JSON files) into
the run's catalog, so they appear in every figure, report, sweep and
comparison next to the Table-1 benchmarks; ``repro workloads list`` shows
the resulting catalog and ``repro workloads show NAME`` one spec.

``reproduce`` (alias ``run``) shares one simulation context across all
experiments (identical simulations run once) and executes independent
experiments concurrently; ``--jobs 1`` forces a serial run.

``check`` runs the repo's own static-analysis rules
(:mod:`repro.analysis.check`) over the given paths (default: ``src`` and
``tests``): determinism, concurrency, consistency and hygiene invariants,
each under a stable rule ID (``repro check --list-rules``).  Exit code 0
means clean, 1 means findings, 2 means a usage error -- CI runs
``repro check --format json --output findings.json`` and archives the
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.scenario import Scenario, preset_names
from repro.engine.context import SimulationContext
from repro.engine.runner import run_experiments, select_experiments
from repro.workloads.catalog import WorkloadCatalog

#: Experiments run by the `characterize` / `evaluate` groups, in report order.
CHARACTERIZE_EXPERIMENTS = ("fig04", "fig05", "fig06", "fig07")
EVALUATE_EXPERIMENTS = ("fig15", "fig16", "fig17")


def _validate_benchmarks(
    names: Optional[List[str]], catalog: WorkloadCatalog
) -> Optional[List[str]]:
    """Canonicalize ``--benchmarks`` names against the run's catalog."""
    if not names:
        return None
    unknown = [name for name in names if name not in catalog]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {unknown}; choose from {catalog.names()}"
        )
    return [catalog.canonical_name(name) for name in names]


def _validate_experiments(
    only: Optional[List[str]], skip: Optional[List[str]] = None
) -> None:
    """Resolve ``--only``/``--skip`` against the registry, after parsing.

    Validation happens here -- not via parser ``choices`` -- so building the
    parser never imports the experiment modules, and experiments registered
    by user code before :func:`main` pass validation too.
    """
    try:
        select_experiments(only=only, skip=skip)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """Build the scenario selected by ``--scenario`` / ``--workload`` / ``--set``."""
    try:
        scenario = Scenario.load(args.scenario) if args.scenario else Scenario.default()
        scenario = _with_workloads(scenario, args)
        if args.set:
            scenario = scenario.with_set(args.set)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    return scenario


def _with_workloads(scenario: Scenario, args: argparse.Namespace) -> Scenario:
    """Merge the ``--workload PATH`` specs into a scenario's catalog.

    Applied before ``--set`` so overrides (e.g. a ``benchmarks=`` selection
    naming a custom workload) validate against the extended catalog.
    """
    workloads = getattr(args, "workload", None)
    if not workloads:
        return scenario
    return scenario.with_workloads(workloads)


def _emit(text: str, output: Optional[str]) -> None:
    """Print the rendered output, or write it to ``--output PATH``."""
    if output:
        path = Path(output)
        try:
            path.write_text(text + "\n", encoding="utf-8")
        except OSError as error:
            raise SystemExit(f"cannot write {path}: {error}")
        print(f"wrote {path}")
    else:
        print(text)


def _run_and_emit(
    args: argparse.Namespace,
    only: Optional[List[str]],
    skip: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
    combined: bool = False,
) -> int:
    """Run a selection of experiments and emit text or JSON output.

    ``combined`` picks the `reproduce`-style report (sections with ``===``
    separators); otherwise reports are joined with a blank line, preserving
    the classic `characterize`/`evaluate` layout byte-for-byte.

    ``benchmarks`` names are validated (and canonicalized) against the
    scenario's workload catalog, so ``--benchmarks`` can select custom
    ``--workload`` networks too.
    """
    scenario = _scenario_from_args(args)
    benchmarks = _validate_benchmarks(benchmarks, scenario.catalog)
    disk_cache = model_cache = None
    if not getattr(args, "no_cache", False):
        # Imported here: only experiment execution needs the cache layer.
        from repro.engine.diskcache import SimulationCache, TrainedModelCache

        cache_dir = getattr(args, "cache_dir", None)
        disk_cache = SimulationCache(cache_dir)
        model_cache = TrainedModelCache(cache_dir)
    context = SimulationContext(
        max_workers=args.jobs,
        scenario=scenario,
        disk_cache=disk_cache,
        model_cache=model_cache,
    )
    result = run_experiments(only=only, skip=skip, benchmarks=benchmarks, context=context)
    if disk_cache is not None:
        disk_cache.flush()
    if args.format == "json":
        text = json.dumps(result.to_dict(), indent=2)
    elif combined:
        text = result.combined_report()
    else:
        text = "\n\n".join(result.reports.values())
    _emit(text, args.output)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    return _run_and_emit(args, only=list(CHARACTERIZE_EXPERIMENTS), benchmarks=args.benchmarks)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    return _run_and_emit(args, only=list(EVALUATE_EXPERIMENTS), benchmarks=args.benchmarks)


def _activate_faults(source: Optional[str]) -> None:
    """Arm a ``--faults`` plan (file or inline JSON) for this process tree."""
    if source is None:
        return
    from repro.faults import FaultPlan, activate

    try:
        plan = FaultPlan.load(source)
    except (OSError, ValueError) as error:
        raise SystemExit(f"invalid --faults plan: {error}") from None
    # Exported so worker subprocesses inherit the same plan.
    activate(plan, export=True)


def _cmd_sweep(args: argparse.Namespace) -> int:
    _activate_faults(args.faults)
    if args.spec or args.axis:
        return _cmd_sweep_grid(args)
    if args.max_attempts is not None:
        raise SystemExit(
            "--max-attempts only applies to queued sweeps (--spec/--axis "
            "with --workers or --resume)"
        )
    selected = list(args.benchmarks or [])
    if args.benchmark:
        print(
            "warning: --benchmark is deprecated; use --benchmarks instead",
            file=sys.stderr,
        )
        selected.append(args.benchmark)
    return _run_and_emit(args, only=["fig18"], benchmarks=selected)


def _cmd_sweep_grid(args: argparse.Namespace) -> int:
    """``repro sweep --spec PATH|PRESET`` / ``--axis KEY=V1,V2,...``."""
    # Imported here: only the generalized sweep needs the sweep engine.
    import dataclasses

    from repro.sweep import SweepRunner, SweepSpec, run_queued_sweep

    if args.benchmark:
        raise SystemExit("--benchmark only applies to the classic Fig. 18 sweep")
    base = _scenario_from_args(args)
    try:
        axes = [_parse_axis(assignment) for assignment in (args.axis or [])]
        seen_axes = set()
        for axis in axes:
            if axis.key in seen_axes:
                raise ValueError(
                    f"duplicate --axis key {axis.key!r}; merge the values "
                    f"into one --axis {axis.key}=V1,V2,..."
                )
            seen_axes.add(axis.key)
        if args.spec:
            spec = SweepSpec.load(args.spec)
            if axes:
                spec = dataclasses.replace(spec, axes=spec.axes + tuple(axes))
        else:
            spec = SweepSpec(name="cli-sweep", axes=tuple(axes))
        if args.benchmarks:
            spec = dataclasses.replace(spec, benchmarks=tuple(args.benchmarks))
        queued = args.workers is not None or args.resume
        if args.max_attempts is not None and not queued:
            raise ValueError(
                "--max-attempts only applies to queued sweeps "
                "(add --workers or --resume)"
            )
        if not queued:
            runner = SweepRunner(
                spec,
                base,
                jobs=args.jobs,
                executor=args.executor,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                backend=args.backend,
                verify=args.verify,
            )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        # Axis *values* are only coerced when each grid point's overrides
        # apply, so bad values (--axis hmc.num_vaults=8,abc) surface here.
        if queued:
            queued_options = {}
            if args.max_attempts is not None:
                queued_options["max_attempts"] = args.max_attempts
            result = run_queued_sweep(
                spec,
                base,
                workers=args.workers if args.workers is not None else 1,
                resume=args.resume,
                shard_size=args.shard_size,
                workdir=args.workdir,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                backend=args.backend,
                verify=args.verify,
                **queued_options,
            )
        else:
            result = runner.run()
    except (ValueError, FileNotFoundError, RuntimeError) as error:
        raise SystemExit(str(error)) from None
    if args.format == "json":
        # to_jsonable keeps the dump loadable everywhere: non-finite floats
        # (inf speedups on degenerate grids) become null instead of the
        # non-standard `Infinity` token json.dumps would emit.
        from repro.engine.serialize import to_jsonable

        text = json.dumps(to_jsonable(result.to_dict()), indent=2)
    else:
        text = result.format_report()
    _emit(text, args.output)
    # Execution statistics go to stderr so stdout/--output stays
    # byte-identical between cold and warm runs.
    print(result.describe_stats(), file=sys.stderr)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    """``repro optimize``: adaptive design-space search over a sweep grid."""
    # Imported here: only this subcommand needs the optimize subsystem.
    import dataclasses

    from repro.engine.serialize import to_jsonable
    from repro.optimize import OptimizeDriver
    from repro.sweep import SweepSpec

    base = _scenario_from_args(args)
    try:
        objective = _objective_from_args(args)
        axes = [_parse_axis(assignment) for assignment in (args.axis or [])]
        seen_axes = set()
        for axis in axes:
            if axis.key in seen_axes:
                raise ValueError(
                    f"duplicate --axis key {axis.key!r}; merge the values "
                    f"into one --axis {axis.key}=V1,V2,..."
                )
            seen_axes.add(axis.key)
        if args.spec:
            space = SweepSpec.load(args.spec)
            if axes:
                space = dataclasses.replace(space, axes=space.axes + tuple(axes))
        elif axes:
            space = SweepSpec(name="cli-optimize", axes=tuple(axes))
        else:
            raise ValueError(
                "optimize needs a search space: --spec PATH|PRESET and/or "
                "--axis KEY=V1,V2,..."
            )
        if args.benchmarks:
            space = dataclasses.replace(space, benchmarks=tuple(args.benchmarks))
        driver = OptimizeDriver(
            objective,
            space,
            base,
            budget=args.budget,
            driver=args.driver,
            refine=args.refine,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        # Axis values and metric paths are validated on the first probe, so
        # bad ones (--axis hmc.num_vaults=abc, a metric typo) surface here.
        result = driver.run()
    except (ValueError, RuntimeError) as error:
        raise SystemExit(str(error)) from None
    if args.format == "json":
        text = json.dumps(to_jsonable(result.to_dict()), indent=2)
    else:
        text = result.format_report()
    _emit(text, args.output)
    # Execution statistics go to stderr so stdout/--output stays
    # byte-identical between cold and warm runs.
    print(result.describe_stats(), file=sys.stderr)
    return 0


def _objective_from_args(args: argparse.Namespace):
    """Build the :class:`ObjectiveSpec` selected by ``--objective``/``--constraint``.

    A single ``--objective`` naming an existing file loads a full JSON
    objective spec; otherwise every ``--objective`` is a ``METRIC[:max|min]``
    path.  ``--constraint`` entries are merged either way.
    """
    from repro.optimize import ObjectiveSpec

    if not args.objective:
        raise ValueError(
            "optimize needs at least one --objective METRIC[:max|min] "
            "(e.g. --objective fig17.average_speedup) or an objective-spec "
            "JSON file (--objective PATH)"
        )
    constraints = list(args.constraint or [])
    if len(args.objective) == 1 and Path(args.objective[0]).exists():
        spec = ObjectiveSpec.from_file(args.objective[0])
        return ObjectiveSpec.coerce(spec, constraints=constraints)
    return ObjectiveSpec.coerce(list(args.objective), constraints=constraints)


def _parse_axis(assignment: str):
    """Parse one ``--axis KEY=V1,V2,...`` option into a sweep axis."""
    from repro.sweep import SweepAxis

    # Split on the FIRST '=' only: axis values may themselves contain '='.
    key, sep, raw = str(assignment).partition("=")
    if not sep or not key.strip():
        raise ValueError(
            f"invalid --axis {assignment!r}; expected KEY=V1,V2,... "
            f"(e.g. --axis hmc.pe_frequency_mhz=312.5,625,1250)"
        )
    values = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not values:
        raise ValueError(
            f"--axis {key.strip()!r} has no values; expected KEY=V1,V2,... "
            f"(e.g. --axis hmc.pe_frequency_mhz=312.5,625,1250)"
        )
    return SweepAxis(key.strip(), tuple(_parse_axis_value(value) for value in values))


def _parse_axis_value(text: str):
    """Coerce a CLI axis value: int, then float, then bare string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _cmd_reproduce(args: argparse.Namespace) -> int:
    _validate_experiments(only=args.only, skip=args.skip)
    return _run_and_emit(
        args, only=args.only, skip=args.skip, benchmarks=args.benchmarks, combined=True
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    # Imported here: compare is the only subcommand needing the session layer.
    from repro.api.session import compare_scenarios

    _validate_experiments(only=args.only, skip=args.skip)
    try:
        bases = [Scenario.load(spec) for spec in (args.scenario or ["paper-default"])]
        bases = [_with_workloads(base, args) for base in bases]
        if args.set:
            variants = [base.with_set(args.set) for base in bases]
            # One base + overrides compares base vs. variant; several bases
            # compare the uniformly-overridden variants.
            scenarios = [bases[0]] + variants if len(bases) == 1 else variants
        else:
            scenarios = bases
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if len(scenarios) < 2:
        raise SystemExit(
            "compare needs at least two scenarios: repeat --scenario, or add "
            "--set KEY=VALUE to compare a scenario against its overridden variant"
        )
    benchmarks = args.benchmarks or None
    if benchmarks:
        # A restriction must resolve in every compared scenario's catalog;
        # the first scenario's canonical spelling is used for the run.
        canonical = [
            _validate_benchmarks(benchmarks, scenario.catalog) for scenario in scenarios
        ]
        benchmarks = canonical[0]
    comparison = compare_scenarios(
        scenarios,
        only=args.only,
        skip=args.skip or None,
        benchmarks=benchmarks,
        jobs=args.jobs,
    )
    if args.format == "json":
        text = json.dumps(comparison.to_dict(), indent=2)
    else:
        text = comparison.format_report()
    _emit(text, args.output)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    """``repro workloads list`` / ``repro workloads show NAME``."""
    # Imported here: only this subcommand renders catalog tables.
    from repro.analysis.tables import format_table

    if args.action == "show" and not args.name:
        raise SystemExit("workloads show requires a workload NAME")
    scenario = _scenario_from_args(args)
    catalog = scenario.catalog
    if args.action == "show":
        try:
            spec = catalog.get(args.name)
        except KeyError as error:
            raise SystemExit(str(error.args[0])) from None
        if args.format == "json":
            text = json.dumps(spec.to_dict(), indent=2)
        else:
            text = "\n".join(
                [
                    spec.describe(),
                    f"  dataset:            {spec.dataset_name} "
                    f"{spec.dataset_spec.image_shape}, {spec.dataset_spec.num_classes} classes"
                    + (" (custom)" if spec.is_custom_dataset else ""),
                    f"  batch size:         {spec.batch_size}",
                    f"  low capsules:       {spec.num_low_capsules} x {spec.low_dim}",
                    f"  high capsules:      {spec.num_high_capsules} x {spec.high_dim}",
                    f"  routing:            {spec.routing.value}, "
                    f"{spec.routing_iterations} iterations",
                    f"  network scale:      {spec.network_scale:g}",
                ]
            )
    else:
        if args.format == "json":
            text = json.dumps([spec.to_dict() for spec in catalog.specs()], indent=2)
        else:
            text = format_table(
                headers=["Workload", "Dataset", "BS", "L", "H", "CL", "CH", "Routing", "Iter"],
                rows=[
                    [
                        spec.name,
                        spec.dataset_name + ("*" if spec.is_custom_dataset else ""),
                        spec.batch_size,
                        spec.num_low_capsules,
                        spec.num_high_capsules,
                        spec.low_dim,
                        spec.high_dim,
                        spec.routing.value,
                        spec.routing_iterations,
                    ]
                    for spec in catalog.specs()
                ],
                title=f"Workload catalog ({len(catalog)} networks; * = custom dataset)",
            )
    _emit(text, args.output)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the HTTP/JSON service until drained shutdown."""
    # Imported here: only this subcommand needs the serve subsystem.
    from repro.serve import ReproServer, ServeConfig

    _activate_faults(args.faults)
    scenario = _scenario_from_args(args)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            scenario=scenario,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            max_sessions=args.max_sessions,
            drain_timeout=args.drain_timeout,
            quiet=args.quiet,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
        )
        server = ReproServer(config)
    except (ValueError, OSError) as error:
        raise SystemExit(str(error)) from None
    print(
        f"repro serve listening on {server.url} "
        f"(base scenario {scenario.name!r}; SIGTERM/Ctrl-C drains and exits)",
        file=sys.stderr,
    )
    return server.serve_forever()


def _positive_int(text: str) -> int:
    """Argparse type for ``--jobs``: a strictly positive integer.

    Zero and negative values used to be silently clamped to ``1`` deep
    inside :class:`~repro.engine.context.SimulationContext`; the CLI now
    rejects them up front with a clear message.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (1 = serial), got {value}"
        )
    return value


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: plain-text tables (default) or structured JSON",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the output to PATH instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker count (1 = serial; default: bounded CPU count)",
    )


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """Persistent-cache options shared by the experiment-running commands.

    ``sweep`` declares its own copies (same flags) because it threads them
    into the sweep runner rather than a simulation context.
    """
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent cache root for simulation results and trained "
            "CapsNet models (default: $REPRO_CACHE_DIR or ~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the persistent caches for this run (table5 then always "
            "retrains its networks)"
        ),
    )


def _add_scenario_options(parser: argparse.ArgumentParser, repeatable: bool = False) -> None:
    if repeatable:
        parser.add_argument(
            "--scenario",
            action="append",
            default=None,
            metavar="PATH|PRESET",
            help=(
                "hardware scenario to compare (repeatable): a preset "
                f"({', '.join(preset_names())}) or a JSON scenario file"
            ),
        )
    else:
        parser.add_argument(
            "--scenario",
            default=None,
            metavar="PATH|PRESET",
            help=(
                "hardware scenario: a preset "
                f"({', '.join(preset_names())}) or a JSON scenario file "
                "(paper-default when omitted)"
            ),
        )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="PATH",
        help=(
            "workload spec JSON file merged into the run's catalog, "
            "repeatable; the networks run alongside the Table-1 benchmarks"
        ),
    )
    parser.add_argument(
        "--set",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help=(
            "dotted-path scenario override, repeatable "
            "(e.g. --set hmc.pe_frequency_mhz=625 --set gpu=V100)"
        ),
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: run the static-analysis rules (exit 1 on findings)."""
    # Imported here: only this subcommand needs the checker.
    from repro.analysis.check import format_rule_table, run_check

    if args.list_rules:
        _emit(format_rule_table(), args.output)
        return 0
    paths = args.paths or ["src", "tests"]
    try:
        result = run_check(paths, select=args.select, ignore=args.ignore)
    except (ValueError, FileNotFoundError) as error:
        print(f"repro check: {error}", file=sys.stderr)
        return 2
    text = result.format_json() if args.format == "json" else result.format_text()
    _emit(text, args.output)
    return 0 if result.ok(max_severity=args.severity) else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser.

    Building the parser is side-effect free: experiment names are validated
    against the registry only after parsing, so startup never imports the
    experiment modules.
    """
    # Imported here (cheap -- repro/__init__ pulls no experiment modules)
    # so --version always matches the installed package.
    from repro import __version__

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    characterize = subparsers.add_parser(
        "characterize", help="GPU characterization (Figs. 4-7)"
    )
    characterize.add_argument("--benchmarks", nargs="*", default=None)
    _add_scenario_options(characterize)
    _add_output_options(characterize)
    _add_cache_options(characterize)
    characterize.set_defaults(func=_cmd_characterize)

    evaluate = subparsers.add_parser("evaluate", help="PIM-CapsNet evaluation (Figs. 15-17)")
    evaluate.add_argument("--benchmarks", nargs="*", default=None)
    _add_scenario_options(evaluate)
    _add_output_options(evaluate)
    _add_cache_options(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "design-space sweep: --spec/--axis run a grid of scenario "
            "variants (process-parallel, persistently cached); without "
            "them the classic Fig. 18 frequency sweep runs"
        ),
    )
    sweep.add_argument("--benchmarks", nargs="*", default=None)
    sweep.add_argument(
        "--benchmark",
        default=None,
        help="deprecated alias of --benchmarks (single name)",
    )
    sweep.add_argument(
        "--spec",
        default=None,
        metavar="PATH|PRESET",
        help=(
            "sweep specification: a preset (fig18-frequency) or a JSON "
            "sweep-spec file"
        ),
    )
    sweep.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help=(
            "swept scenario axis, repeatable; the grid is the cartesian "
            "product of all axes (e.g. --axis hmc.pe_frequency_mhz=312.5,625,1250)"
        ),
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent simulation cache root (default: $REPRO_CACHE_DIR "
            "or ~/.cache/repro)"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent simulation cache for this run",
    )
    sweep.add_argument(
        "--executor",
        choices=("auto", "process", "thread", "serial"),
        default="auto",
        help=(
            "how grid points execute (default auto: processes when "
            "--jobs allows, else serial)"
        ),
    )
    sweep.add_argument(
        "--backend",
        choices=("auto", "vectorized", "scalar"),
        default="auto",
        help=(
            "evaluation backend (default auto: batch whole grid planes "
            "through numpy when the sweep is eligible, bit-exact with the "
            "scalar path; 'vectorized' demands it, 'scalar' forbids it)"
        ),
    )
    sweep.add_argument(
        "--verify",
        choices=("full", "sample", "off"),
        default="sample",
        help=(
            "vectorized equivalence gate: re-simulate freshly computed "
            "points through the scalar path and require exact equality "
            "(default sample: first+last fresh point per grid plane)"
        ),
    )
    sweep.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "run through the sharded work queue with N worker processes "
            "(resumable; workers coordinate via lease files only)"
        ),
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume a killed/incomplete queued sweep: completed shards are "
            "reused, only missing ones execute"
        ),
    )
    sweep.add_argument(
        "--shard-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="grid points per work-queue shard (default 256)",
    )
    sweep.add_argument(
        "--workdir",
        default=None,
        metavar="PATH",
        help=(
            "work-queue directory (default: content-addressed dir under "
            "the cache root, so --resume finds the previous run by itself)"
        ),
    )
    sweep.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "queued sweeps only: attempts before a crashing (poison) shard "
            "is marked failed and the sweep completes with a partial-results "
            "report (default 3)"
        ),
    )
    sweep.add_argument(
        "--faults",
        default=None,
        metavar="PATH|JSON",
        help=(
            "arm a deterministic fault-injection plan (JSON file or inline "
            "object; exported to worker processes) -- for testing the "
            "sweep's crash-consistency story"
        ),
    )
    _add_scenario_options(sweep)
    _add_output_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    optimize = subparsers.add_parser(
        "optimize",
        help=(
            "design-space search: find the best scenario variants under "
            "--objective metrics (Pareto frontier, constraints, adaptive "
            "drivers) without enumerating the whole grid"
        ),
    )
    optimize.add_argument(
        "--objective",
        action="append",
        default=None,
        metavar="METRIC[:max|min]",
        help=(
            "optimization objective, repeatable: a dotted metric path into "
            "the experiments' headline numbers (maximize by default, e.g. "
            "--objective fig17.average_speedup "
            "--objective overhead.total_area_mm2:min); a single PATH loads "
            "a JSON objective-spec file instead"
        ),
    )
    optimize.add_argument(
        "--constraint",
        action="append",
        default=None,
        metavar="METRIC:OP=VALUE",
        help=(
            "feasibility constraint, repeatable; OP is within_pct_of_best, "
            "min or max (e.g. "
            "--constraint fig17.average_speedup:within_pct_of_best=5)"
        ),
    )
    optimize.add_argument(
        "--spec",
        default=None,
        metavar="PATH|PRESET",
        help=(
            "search space: a sweep preset (fig18-frequency) or a JSON "
            "sweep-spec file; --axis options extend it"
        ),
    )
    optimize.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help=(
            "searched scenario axis, repeatable; the candidate grid is the "
            "cartesian product of all axes"
        ),
    )
    optimize.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="maximum number of probes (default: unlimited)",
    )
    optimize.add_argument(
        "--driver",
        choices=("auto", "exhaustive", "halving", "descent"),
        default="auto",
        help=(
            "search driver (default auto: coordinate descent on numeric "
            "axes, successive halving otherwise; exhaustive probes the "
            "whole grid)"
        ),
    )
    optimize.add_argument(
        "--refine",
        type=int,
        default=1,
        metavar="N",
        help=(
            "bracketing-refinement levels after coordinate descent: probe "
            "midpoints between the winner and its grid neighbours "
            "(0 disables; default 1)"
        ),
    )
    optimize.add_argument("--benchmarks", nargs="*", default=None)
    optimize.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent simulation cache root shared with sweeps "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)"
        ),
    )
    optimize.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent simulation cache for this run",
    )
    _add_scenario_options(optimize)
    _add_output_options(optimize)
    optimize.set_defaults(func=_cmd_optimize)

    reproduce = subparsers.add_parser(
        "reproduce", aliases=["run"], help="run every experiment"
    )
    reproduce.add_argument("--skip", nargs="*", default=[])
    reproduce.add_argument("--only", nargs="*", default=None)
    reproduce.add_argument("--benchmarks", nargs="*", default=None)
    _add_scenario_options(reproduce)
    _add_output_options(reproduce)
    _add_cache_options(reproduce)
    reproduce.set_defaults(func=_cmd_reproduce)

    compare = subparsers.add_parser(
        "compare", help="run the suite under N scenarios and diff the results"
    )
    compare.add_argument("--skip", nargs="*", default=[])
    compare.add_argument("--only", nargs="*", default=None)
    compare.add_argument("--benchmarks", nargs="*", default=None)
    _add_scenario_options(compare, repeatable=True)
    _add_output_options(compare)
    compare.set_defaults(func=_cmd_compare)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the HTTP/JSON simulation service (request coalescing, "
            "shared warm caches, streaming sweep progress)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; use 0.0.0.0 to serve remotely)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8752,
        metavar="N",
        help="TCP port (default 8752; 0 picks a free port)",
    )
    serve.add_argument(
        "--max-sessions",
        type=_positive_int,
        default=8,
        metavar="N",
        help="warm per-scenario sessions kept in the LRU (default 8)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds shutdown waits for in-flight requests (default 30)",
    )
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="per-session worker count (1 = serial; default: bounded CPU count)",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request access logging on stderr",
    )
    serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "admit at most N concurrent work (POST) requests; extra ones "
            "get 503 + Retry-After instead of queueing (default: unlimited)"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "answer run/compare requests that exceed this deadline with a "
            "504; the work continues server-side and warms the caches "
            "(default: no timeout)"
        ),
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PATH|JSON",
        help=(
            "arm a deterministic fault-injection plan (JSON file or inline "
            "object) -- for testing the service's degradation story"
        ),
    )
    _add_scenario_options(serve)
    _add_cache_options(serve)
    serve.set_defaults(func=_cmd_serve)

    workloads = subparsers.add_parser(
        "workloads", help="list or inspect the run's workload catalog"
    )
    workloads.add_argument(
        "action", choices=("list", "show"), help="list the catalog or show one spec"
    )
    workloads.add_argument(
        "name", nargs="?", default=None, help="workload name (for `show`)"
    )
    _add_scenario_options(workloads)
    _add_output_options(workloads)
    workloads.set_defaults(func=_cmd_workloads)

    check = subparsers.add_parser(
        "check",
        help=(
            "static analysis: determinism/concurrency/consistency/hygiene "
            "rules with stable IDs (exit 0 clean, 1 findings, 2 usage)"
        ),
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help=(
            "files or directories to check -- .py/.md/.json files, "
            "directories recurse (default: src tests)"
        ),
    )
    check.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="check only the named rule(s), repeatable (e.g. --select RPR-D001)",
    )
    check.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip the named rule(s), repeatable",
    )
    check.add_argument(
        "--severity",
        choices=("error", "warning"),
        default="warning",
        help=(
            "findings that fail the check: 'warning' (default, any finding "
            "fails) or 'error' (warnings pass)"
        ),
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (IDs, families, severities) and exit",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: one line per finding (default) or structured JSON",
    )
    check.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout (the CI artifact)",
    )
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
