"""Command line interface for the PIM-CapsNet reproduction.

Three subcommands cover the common workflows::

    python -m repro characterize [--benchmarks ...]     # Figs. 4-7 (GPU bottleneck)
    python -m repro evaluate [--benchmarks ...]          # Figs. 15-17 (PIM-CapsNet)
    python -m repro sweep [--benchmark NAME]             # Fig. 18 (frequency sweep)
    python -m repro reproduce [--skip ...] [--only ...]  # everything via the runner

The CLI is a thin veneer over :mod:`repro.experiments`; every command prints
the same plain-text tables the benchmark harness writes to
``benchmarks/reports/``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments import (
    fig04_layer_breakdown,
    fig05_stall_breakdown,
    fig06_onchip_storage,
    fig07_bandwidth,
    fig15_rp_acceleration,
    fig16_pim_breakdown,
    fig17_end_to_end,
    fig18_frequency_sweep,
    runner,
)
from repro.workloads.benchmarks import benchmark_names


def _validate_benchmarks(names: Optional[List[str]]) -> Optional[List[str]]:
    if not names:
        return None
    known = set(benchmark_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(f"unknown benchmark(s) {unknown}; choose from {sorted(known)}")
    return names


def _cmd_characterize(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks(args.benchmarks)
    print(fig04_layer_breakdown.format_report(fig04_layer_breakdown.run(benchmarks=benchmarks)))
    print()
    print(fig05_stall_breakdown.format_report(fig05_stall_breakdown.run(benchmarks=benchmarks)))
    print()
    print(fig06_onchip_storage.format_report(fig06_onchip_storage.run(benchmarks=benchmarks)))
    print()
    print(fig07_bandwidth.format_report(fig07_bandwidth.run(benchmarks=benchmarks)))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks(args.benchmarks)
    print(fig15_rp_acceleration.format_report(fig15_rp_acceleration.run(benchmarks=benchmarks)))
    print()
    print(fig16_pim_breakdown.format_report(fig16_pim_breakdown.run(benchmarks=benchmarks)))
    print()
    print(fig17_end_to_end.format_report(fig17_end_to_end.run(benchmarks=benchmarks)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks([args.benchmark] if args.benchmark else None)
    result = fig18_frequency_sweep.run(benchmarks=benchmarks)
    print(fig18_frequency_sweep.format_report(result))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    result = runner.run_all(skip=args.skip, only=args.only)
    print(result.combined_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    characterize = subparsers.add_parser(
        "characterize", help="GPU characterization (Figs. 4-7)"
    )
    characterize.add_argument("--benchmarks", nargs="*", default=None)
    characterize.set_defaults(func=_cmd_characterize)

    evaluate = subparsers.add_parser("evaluate", help="PIM-CapsNet evaluation (Figs. 15-17)")
    evaluate.add_argument("--benchmarks", nargs="*", default=None)
    evaluate.set_defaults(func=_cmd_evaluate)

    sweep = subparsers.add_parser("sweep", help="PE frequency sweep (Fig. 18)")
    sweep.add_argument("--benchmark", default=None)
    sweep.set_defaults(func=_cmd_sweep)

    reproduce = subparsers.add_parser("reproduce", help="run every experiment")
    reproduce.add_argument("--skip", nargs="*", default=[], choices=sorted(runner.EXPERIMENTS))
    reproduce.add_argument("--only", nargs="*", default=None, choices=sorted(runner.EXPERIMENTS))
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
