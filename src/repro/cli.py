"""Command line interface for the PIM-CapsNet reproduction.

Four subcommands cover the common workflows::

    python -m repro characterize [--benchmarks ...]      # Figs. 4-7 (GPU bottleneck)
    python -m repro evaluate [--benchmarks ...]          # Figs. 15-17 (PIM-CapsNet)
    python -m repro sweep [--benchmark NAME]             # Fig. 18 (frequency sweep)
    python -m repro reproduce [--skip ...] [--only ...]  # everything via the engine

Every command prints the same plain-text tables the benchmark harness writes
to ``benchmarks/reports/`` by default; ``--format json`` emits the
experiments' structured ``to_dict()`` output instead, and ``--output PATH``
writes either format to a file.  ``reproduce`` shares one simulation context
across all experiments (identical simulations run once) and executes
independent experiments concurrently; ``--jobs 1`` forces a serial run.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.engine.context import SimulationContext
from repro.engine.experiment import experiment_names
from repro.engine.runner import run_experiments
from repro.workloads.benchmarks import benchmark_names

#: Experiments run by the `characterize` / `evaluate` groups, in report order.
CHARACTERIZE_EXPERIMENTS = ("fig04", "fig05", "fig06", "fig07")
EVALUATE_EXPERIMENTS = ("fig15", "fig16", "fig17")


def _validate_benchmarks(names: Optional[List[str]]) -> Optional[List[str]]:
    if not names:
        return None
    known = set(benchmark_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(f"unknown benchmark(s) {unknown}; choose from {sorted(known)}")
    return names


def _emit(text: str, output: Optional[str]) -> None:
    """Print the rendered output, or write it to ``--output PATH``."""
    if output:
        path = Path(output)
        try:
            path.write_text(text + "\n", encoding="utf-8")
        except OSError as error:
            raise SystemExit(f"cannot write {path}: {error}")
        print(f"wrote {path}")
    else:
        print(text)


def _run_and_emit(
    args: argparse.Namespace,
    only: Optional[List[str]],
    skip: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
    combined: bool = False,
) -> int:
    """Run a selection of experiments and emit text or JSON output.

    ``combined`` picks the `reproduce`-style report (sections with ``===``
    separators); otherwise reports are joined with a blank line, preserving
    the classic `characterize`/`evaluate` layout byte-for-byte.
    """
    context = SimulationContext(max_workers=args.jobs)
    result = run_experiments(only=only, skip=skip, benchmarks=benchmarks, context=context)
    if args.format == "json":
        text = json.dumps(result.to_dict(), indent=2)
    elif combined:
        text = result.combined_report()
    else:
        text = "\n\n".join(result.reports.values())
    _emit(text, args.output)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks(args.benchmarks)
    return _run_and_emit(args, only=list(CHARACTERIZE_EXPERIMENTS), benchmarks=benchmarks)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks(args.benchmarks)
    return _run_and_emit(args, only=list(EVALUATE_EXPERIMENTS), benchmarks=benchmarks)


def _cmd_sweep(args: argparse.Namespace) -> int:
    benchmarks = _validate_benchmarks([args.benchmark] if args.benchmark else None)
    return _run_and_emit(args, only=["fig18"], benchmarks=benchmarks)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    return _run_and_emit(args, only=args.only, skip=args.skip, combined=True)


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: plain-text tables (default) or structured JSON",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the output to PATH instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool width (1 = serial; default: bounded CPU count)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    characterize = subparsers.add_parser(
        "characterize", help="GPU characterization (Figs. 4-7)"
    )
    characterize.add_argument("--benchmarks", nargs="*", default=None)
    _add_output_options(characterize)
    characterize.set_defaults(func=_cmd_characterize)

    evaluate = subparsers.add_parser("evaluate", help="PIM-CapsNet evaluation (Figs. 15-17)")
    evaluate.add_argument("--benchmarks", nargs="*", default=None)
    _add_output_options(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    sweep = subparsers.add_parser("sweep", help="PE frequency sweep (Fig. 18)")
    sweep.add_argument("--benchmark", default=None)
    _add_output_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    reproduce = subparsers.add_parser("reproduce", help="run every experiment")
    reproduce.add_argument("--skip", nargs="*", default=[], choices=experiment_names())
    reproduce.add_argument("--only", nargs="*", default=None, choices=experiment_names())
    _add_output_options(reproduce)
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
