"""Benchmark configurations of Table 1.

The paper evaluates 12 CapsNets spanning four datasets, three batch sizes,
three low-capsule counts, three high-capsule counts and three routing
iteration counts.  All networks use the CapsNet-MNIST structure (Sec. 2.1):
an 8-dimensional low-level capsule and a 16-dimensional high-level capsule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.capsnet.datasets import DATASET_SPECS, DatasetSpec


@dataclass(frozen=True)
class BenchmarkConfig:
    """One row of Table 1.

    Attributes:
        name: benchmark name (e.g. ``"Caps-MN1"``).
        dataset: dataset name (key into :data:`repro.capsnet.datasets.DATASET_SPECS`).
        batch_size: batched input sets processed per inference (``NB``).
        num_low_capsules: number of low-level capsules (``NL``).
        num_high_capsules: number of high-level capsules (``NH``).
        routing_iterations: dynamic routing iterations (``I``).
        low_dim: scalars per low-level capsule (``CL``, 8 for all benchmarks).
        high_dim: scalars per high-level capsule (``CH``, 16 for all benchmarks).
    """

    name: str
    dataset: str
    batch_size: int
    num_low_capsules: int
    num_high_capsules: int
    routing_iterations: int
    low_dim: int = 8
    high_dim: int = 16

    def __post_init__(self) -> None:
        for field_name in (
            "batch_size",
            "num_low_capsules",
            "num_high_capsules",
            "routing_iterations",
            "low_dim",
            "high_dim",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.dataset not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {self.dataset!r}")

    # -- convenience ----------------------------------------------------------

    @property
    def dataset_spec(self) -> DatasetSpec:
        """Shape-level description of the benchmark's dataset."""
        return DATASET_SPECS[self.dataset]

    @property
    def network_scale(self) -> float:
        """A scalar proxy of the routing workload size.

        The paper discusses "network size" as the combination of L capsules,
        H capsules and routing iterations; this property provides a single
        comparable number used for scalability plots.
        """
        return float(
            self.num_low_capsules * self.num_high_capsules * self.routing_iterations
        )

    @property
    def prediction_vector_count(self) -> int:
        """Number of prediction vectors u_hat produced per inference batch."""
        return self.batch_size * self.num_low_capsules * self.num_high_capsules

    def describe(self) -> str:
        """Human readable one-line description."""
        return (
            f"{self.name}: {self.dataset}, BS={self.batch_size}, "
            f"L={self.num_low_capsules}, H={self.num_high_capsules}, "
            f"iter={self.routing_iterations}"
        )


def _build_benchmarks() -> Dict[str, BenchmarkConfig]:
    rows: List[Tuple[str, str, int, int, int, int]] = [
        # name, dataset, batch, L caps, H caps, iterations (Table 1)
        ("Caps-MN1", "MNIST", 100, 1152, 10, 3),
        ("Caps-MN2", "MNIST", 200, 1152, 10, 3),
        ("Caps-MN3", "MNIST", 300, 1152, 10, 3),
        ("Caps-CF1", "CIFAR10", 100, 2304, 11, 3),
        ("Caps-CF2", "CIFAR10", 100, 3456, 11, 3),
        ("Caps-CF3", "CIFAR10", 100, 4608, 11, 3),
        ("Caps-EN1", "EMNIST-LETTER", 100, 1152, 26, 3),
        ("Caps-EN2", "EMNIST-BALANCED", 100, 1152, 47, 3),
        ("Caps-EN3", "EMNIST-BYCLASS", 100, 1152, 62, 3),
        ("Caps-SV1", "SVHN", 100, 576, 10, 3),
        ("Caps-SV2", "SVHN", 100, 576, 10, 6),
        ("Caps-SV3", "SVHN", 100, 576, 10, 9),
    ]
    return {
        name: BenchmarkConfig(
            name=name,
            dataset=dataset,
            batch_size=batch,
            num_low_capsules=low,
            num_high_capsules=high,
            routing_iterations=iterations,
        )
        for name, dataset, batch, low, high, iterations in rows
    }


#: All 12 benchmarks of Table 1 keyed by name.
BENCHMARKS: Dict[str, BenchmarkConfig] = _build_benchmarks()


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's presentation order."""
    return list(BENCHMARKS.keys())


def get_benchmark(name: str) -> BenchmarkConfig:
    """Look up a benchmark by (case-insensitive) name."""
    for key, config in BENCHMARKS.items():
        if key.lower() == name.strip().lower():
            return config
    raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
