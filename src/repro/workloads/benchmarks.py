"""Benchmark configurations of Table 1.

The paper evaluates 12 CapsNets spanning four datasets, three batch sizes,
three low-capsule counts, three high-capsule counts and three routing
iteration counts.  All networks use the CapsNet-MNIST structure (Sec. 2.1):
an 8-dimensional low-level capsule and a 16-dimensional high-level capsule.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from repro.capsnet.datasets import DATASET_SPECS, DatasetSpec


@dataclass(frozen=True)
class BenchmarkConfig:
    """One row of Table 1 (or a user-defined workload's equivalent).

    Attributes:
        name: benchmark name (e.g. ``"Caps-MN1"``).
        dataset: dataset name (key into :data:`repro.capsnet.datasets.DATASET_SPECS`,
            or the name of ``custom_dataset`` when one is given).
        batch_size: batched input sets processed per inference (``NB``).
        num_low_capsules: number of low-level capsules (``NL``).
        num_high_capsules: number of high-level capsules (``NH``).
        routing_iterations: routing iterations (``I``).
        low_dim: scalars per low-level capsule (``CL``, 8 for all benchmarks).
        high_dim: scalars per high-level capsule (``CH``, 16 for all benchmarks).
        routing: routing algorithm, ``"dynamic"`` or ``"em"`` (user-defined
            :class:`~repro.workloads.catalog.WorkloadSpec` workloads may pick
            EM; every Table-1 benchmark uses dynamic routing).
        custom_dataset: inline dataset spec for workloads whose dataset is not
            in :data:`~repro.capsnet.datasets.DATASET_SPECS`.
    """

    name: str
    dataset: str
    batch_size: int
    num_low_capsules: int
    num_high_capsules: int
    routing_iterations: int
    low_dim: int = 8
    high_dim: int = 16
    routing: str = "dynamic"
    custom_dataset: Optional[DatasetSpec] = None

    def __post_init__(self) -> None:
        for field_name in (
            "batch_size",
            "num_low_capsules",
            "num_high_capsules",
            "routing_iterations",
            "low_dim",
            "high_dim",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.routing not in ("dynamic", "em"):
            raise ValueError(
                f"unknown routing algorithm {self.routing!r}; choose from ['dynamic', 'em']"
            )
        if self.custom_dataset is not None:
            if not isinstance(self.custom_dataset, DatasetSpec):
                raise ValueError("custom_dataset must be a DatasetSpec")
            if self.dataset != self.custom_dataset.name:
                raise ValueError(
                    f"dataset {self.dataset!r} does not match "
                    f"custom_dataset name {self.custom_dataset.name!r}"
                )
        elif self.dataset not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {self.dataset!r}")

    # -- convenience ----------------------------------------------------------

    @property
    def dataset_spec(self) -> DatasetSpec:
        """Shape-level description of the benchmark's dataset."""
        if self.custom_dataset is not None:
            return self.custom_dataset
        return DATASET_SPECS[self.dataset]

    @property
    def network_scale(self) -> float:
        """A scalar proxy of the routing workload size.

        The paper discusses "network size" as the combination of L capsules,
        H capsules and routing iterations; this property provides a single
        comparable number used for scalability plots.
        """
        return float(
            self.num_low_capsules * self.num_high_capsules * self.routing_iterations
        )

    @property
    def prediction_vector_count(self) -> int:
        """Number of prediction vectors u_hat produced per inference batch."""
        return self.batch_size * self.num_low_capsules * self.num_high_capsules

    def describe(self) -> str:
        """Human readable one-line description."""
        return (
            f"{self.name}: {self.dataset}, BS={self.batch_size}, "
            f"L={self.num_low_capsules}, H={self.num_high_capsules}, "
            f"iter={self.routing_iterations}"
        )


def _build_benchmarks() -> Dict[str, BenchmarkConfig]:
    rows: List[Tuple[str, str, int, int, int, int]] = [
        # name, dataset, batch, L caps, H caps, iterations (Table 1)
        ("Caps-MN1", "MNIST", 100, 1152, 10, 3),
        ("Caps-MN2", "MNIST", 200, 1152, 10, 3),
        ("Caps-MN3", "MNIST", 300, 1152, 10, 3),
        ("Caps-CF1", "CIFAR10", 100, 2304, 11, 3),
        ("Caps-CF2", "CIFAR10", 100, 3456, 11, 3),
        ("Caps-CF3", "CIFAR10", 100, 4608, 11, 3),
        ("Caps-EN1", "EMNIST-LETTER", 100, 1152, 26, 3),
        ("Caps-EN2", "EMNIST-BALANCED", 100, 1152, 47, 3),
        ("Caps-EN3", "EMNIST-BYCLASS", 100, 1152, 62, 3),
        ("Caps-SV1", "SVHN", 100, 576, 10, 3),
        ("Caps-SV2", "SVHN", 100, 576, 10, 6),
        ("Caps-SV3", "SVHN", 100, 576, 10, 9),
    ]
    return {
        name: BenchmarkConfig(
            name=name,
            dataset=dataset,
            batch_size=batch,
            num_low_capsules=low,
            num_high_capsules=high,
            routing_iterations=iterations,
        )
        for name, dataset, batch, low, high, iterations in rows
    }


#: All 12 benchmarks of Table 1 keyed by name.  Read-only: the Table-1 seed
#: anchors the golden-report regression tests and the default
#: :func:`~repro.workloads.catalog.default_catalog`; user-defined workloads
#: extend a catalog (or a scenario) instead of mutating this mapping.
BENCHMARKS: Mapping[str, BenchmarkConfig] = MappingProxyType(_build_benchmarks())


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's presentation order."""
    return list(BENCHMARKS.keys())


def get_benchmark(name: str) -> BenchmarkConfig:
    """Look up a Table-1 benchmark by (case-insensitive) name.

    The lookup is delegated to the default workload catalog, the single
    name-normalization authority shared with scenario validation and the
    engine (scenario-local workloads resolve through
    :meth:`repro.api.scenario.Scenario.catalog` instead).
    """
    # Imported lazily: the catalog module imports this one at load time.
    from repro.workloads.catalog import default_catalog

    try:
        return default_catalog().benchmark(name)
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}") from None
