"""Parallelizable dimensions of the routing equations (Table 2 of the paper).

The routing procedure can be partitioned along three dimensions:

* **B** -- the batch dimension (independent input sets),
* **L** -- the low-level capsule dimension,
* **H** -- the high-level capsule dimension.

Table 2 records along which dimensions each of the five routing equations
decomposes into independent sub-operations.  Equations that aggregate over a
dimension cannot be split along it without a cross-vault reduction:

* Eq. 2 aggregates over L (``sum_i``), so it is not parallelizable along L
  (only the multiply half is; the reduction needs an aggregation step).
* Eq. 4 aggregates over B (``sum_k``), so it is not parallelizable along B
  (again, only the multiply half is).
* Eq. 5 normalizes over H (softmax denominator), so it is only
  parallelizable along L.

The key observations of Sec. 5.1.1 follow directly:

* *Observation I*: every equation is parallelizable along at least one dimension.
* *Observation II*: no single dimension parallelizes all five equations.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, List


class Dimension(str, Enum):
    """A parallelization dimension of the routing procedure."""

    BATCH = "B"
    LOW = "L"
    HIGH = "H"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RoutingEquation(str, Enum):
    """The five equations of the dynamic routing procedure (Sec. 2.2)."""

    PREDICTION = "eq1"       #: Eq. 1: u_hat = u x W
    WEIGHTED_SUM = "eq2"     #: Eq. 2: s_j = sum_i u_hat * c_ij
    SQUASH = "eq3"           #: Eq. 3: v_j = squash(s_j)
    AGREEMENT = "eq4"        #: Eq. 4: b_ij += sum_k v_j . u_hat
    SOFTMAX = "eq5"          #: Eq. 5: c_ij = softmax_j(b_ij)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table 2: dimensions along which each equation fully parallelizes.
EQUATION_PARALLELISM: Dict[RoutingEquation, FrozenSet[Dimension]] = {
    RoutingEquation.PREDICTION: frozenset({Dimension.BATCH, Dimension.LOW, Dimension.HIGH}),
    RoutingEquation.WEIGHTED_SUM: frozenset({Dimension.BATCH, Dimension.HIGH}),
    RoutingEquation.SQUASH: frozenset({Dimension.BATCH, Dimension.HIGH}),
    RoutingEquation.AGREEMENT: frozenset({Dimension.LOW, Dimension.HIGH}),
    RoutingEquation.SOFTMAX: frozenset({Dimension.LOW}),
}


def parallelizable_dimensions(equation: RoutingEquation) -> FrozenSet[Dimension]:
    """Dimensions along which ``equation`` splits into independent sub-operations."""
    return EQUATION_PARALLELISM[equation]


def supports_dimension(equation: RoutingEquation, dimension: Dimension) -> bool:
    """Whether ``equation`` is fully parallelizable along ``dimension``."""
    return dimension in EQUATION_PARALLELISM[equation]


def equations_not_parallel_along(dimension: Dimension) -> List[RoutingEquation]:
    """Equations that require aggregation when distributing along ``dimension``.

    These are the "purple blocks" of Fig. 10 -- the operations that cannot be
    split into snippets along the chosen distribution dimension and therefore
    require inter-vault communication / pre-aggregation.
    """
    return [eq for eq, dims in EQUATION_PARALLELISM.items() if dimension not in dims]


def common_dimensions() -> FrozenSet[Dimension]:
    """Dimensions that parallelize *all* equations (empty set: Observation II)."""
    result: FrozenSet[Dimension] = frozenset(Dimension)
    for dims in EQUATION_PARALLELISM.values():
        result = result & dims
    return result
