"""Op / traffic models of the non-routing CapsNet layers and the whole network.

The GPU and PIM simulators consume a :class:`CapsNetWorkload`, which exposes
one :class:`LayerWorkload` per network stage:

* the first convolution (``Conv``),
* the PrimaryCaps convolution (the "L Caps layer" of Fig. 4),
* the routing procedure (the "H Caps layer" of Fig. 4), backed by
  :class:`repro.workloads.rp_model.RoutingWorkload`,
* the fully connected reconstruction decoder (the "FC layer" of Fig. 4).

Layer geometries are derived from the benchmark's dataset: the CapsNet-MNIST
structure (9x9 conv with 256 channels, 9x9/stride-2 PrimaryCaps) is applied
to the dataset's image size, and the PrimaryCaps channel count is chosen so
the number of low-level capsules matches Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.rp_model import FP32_BYTES, RoutingWorkload


class LayerKind(str, Enum):
    """Kind of a CapsNet stage, matching Fig. 4's breakdown categories."""

    CONV = "conv"
    PRIMARY_CAPS = "primary_caps"
    ROUTING = "routing"
    FULLY_CONNECTED = "fc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LayerWorkload:
    """Computation and data-movement summary of one network stage.

    Attributes:
        name: human readable stage name.
        kind: stage category.
        flops: floating point operations for the whole batch.
        input_bytes: bytes of activations read from the previous stage.
        weight_bytes: bytes of parameters read.
        output_bytes: bytes of activations produced.
        working_set_bytes: bytes that must be resident while the stage runs
            (used to decide whether intermediates fit on-chip).
    """

    name: str
    kind: LayerKind
    flops: int
    input_bytes: int
    weight_bytes: int
    output_bytes: int
    working_set_bytes: int

    @property
    def traffic_bytes(self) -> int:
        """Ideal off-chip traffic when nothing is cached on-chip."""
        return self.input_bytes + self.weight_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of ideal traffic."""
        traffic = self.traffic_bytes
        return self.flops / float(traffic) if traffic else float("inf")


def _conv_out(size: int, kernel: int, stride: int) -> int:
    out = (size - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"convolution output collapsed: size={size} kernel={kernel} stride={stride}")
    return out


@dataclass(frozen=True)
class ConvGeometry:
    """Spatial geometry of one convolution stage."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_h: int
    in_w: int

    @property
    def out_h(self) -> int:
        return _conv_out(self.in_h, self.kernel, self.stride)

    @property
    def out_w(self) -> int:
        return _conv_out(self.in_w, self.kernel, self.stride)

    def flops(self, batch: int) -> int:
        """Multiply-add FLOPs of the convolution for ``batch`` images."""
        per_output = 2 * self.in_channels * self.kernel * self.kernel
        return batch * self.out_h * self.out_w * self.out_channels * per_output

    def weight_bytes(self) -> int:
        return self.out_channels * self.in_channels * self.kernel * self.kernel * FP32_BYTES

    def input_bytes(self, batch: int) -> int:
        return batch * self.in_channels * self.in_h * self.in_w * FP32_BYTES

    def output_bytes(self, batch: int) -> int:
        return batch * self.out_channels * self.out_h * self.out_w * FP32_BYTES


class CapsNetWorkload:
    """Whole-network analytic workload of one Table-1 benchmark.

    Args:
        config: the benchmark configuration.
        conv_channels: channels of the first convolution (256 in the paper).
        conv_kernel: kernel of the first convolution (9).
        primary_kernel: kernel of the PrimaryCaps convolution (9).
        primary_stride: stride of the PrimaryCaps convolution (2).
        decoder_sizes: hidden sizes of the reconstruction decoder.
    """

    def __init__(
        self,
        config: BenchmarkConfig,
        conv_channels: int = 256,
        conv_kernel: int = 9,
        primary_kernel: int = 9,
        primary_stride: int = 2,
        decoder_sizes: Tuple[int, ...] = (512, 1024),
    ) -> None:
        self.config = config
        self.conv_channels = conv_channels
        self.conv_kernel = conv_kernel
        self.primary_kernel = primary_kernel
        self.primary_stride = primary_stride
        self.decoder_sizes = decoder_sizes
        self.routing = RoutingWorkload(config)

        channels, height, width = config.dataset_spec.image_shape
        self._conv1 = ConvGeometry(
            in_channels=channels,
            out_channels=conv_channels,
            kernel=conv_kernel,
            stride=1,
            in_h=height,
            in_w=width,
        )
        primary_h = _conv_out(self._conv1.out_h, primary_kernel, primary_stride)
        primary_w = _conv_out(self._conv1.out_w, primary_kernel, primary_stride)
        spatial = primary_h * primary_w
        # Choose the capsule channel count that reproduces Table 1's L-capsule count.
        capsule_channels = max(1, int(round(config.num_low_capsules / float(spatial))))
        self._primary = ConvGeometry(
            in_channels=conv_channels,
            out_channels=capsule_channels * config.low_dim,
            kernel=primary_kernel,
            stride=primary_stride,
            in_h=self._conv1.out_h,
            in_w=self._conv1.out_w,
        )
        self.primary_capsule_channels = capsule_channels
        self.primary_spatial = (primary_h, primary_w)

    # -- per-stage workloads ----------------------------------------------------

    def conv_layer(self) -> LayerWorkload:
        """The first convolution layer."""
        batch = self.config.batch_size
        geo = self._conv1
        return LayerWorkload(
            name="Conv",
            kind=LayerKind.CONV,
            flops=geo.flops(batch),
            input_bytes=geo.input_bytes(batch),
            weight_bytes=geo.weight_bytes(),
            output_bytes=geo.output_bytes(batch),
            working_set_bytes=geo.weight_bytes() + geo.input_bytes(1) + geo.output_bytes(1),
        )

    def primary_caps_layer(self) -> LayerWorkload:
        """The PrimaryCaps layer (convolution + squash)."""
        batch = self.config.batch_size
        geo = self._primary
        squash_flops = batch * self.config.num_low_capsules * (3 * self.config.low_dim + 19)
        return LayerWorkload(
            name="PrimaryCaps",
            kind=LayerKind.PRIMARY_CAPS,
            flops=geo.flops(batch) + squash_flops,
            input_bytes=geo.input_bytes(batch),
            weight_bytes=geo.weight_bytes(),
            output_bytes=geo.output_bytes(batch),
            working_set_bytes=geo.weight_bytes() + geo.input_bytes(1) + geo.output_bytes(1),
        )

    def routing_layer(self) -> LayerWorkload:
        """The routing procedure (the "H Caps" stage of Fig. 4)."""
        fp = self.routing.footprint()
        return LayerWorkload(
            name="Routing",
            kind=LayerKind.ROUTING,
            flops=self.routing.total_flops(),
            input_bytes=fp.low_capsules,
            weight_bytes=fp.weights,
            output_bytes=fp.high_capsules,
            working_set_bytes=fp.intermediate_bytes,
        )

    def fc_layers(self) -> List[LayerWorkload]:
        """The fully connected reconstruction decoder stages."""
        batch = self.config.batch_size
        pixels = self.config.dataset_spec.pixels
        sizes = [self.config.num_high_capsules * self.config.high_dim, *self.decoder_sizes, pixels]
        layers: List[LayerWorkload] = []
        for idx in range(len(sizes) - 1):
            fan_in, fan_out = sizes[idx], sizes[idx + 1]
            weight_bytes = fan_in * fan_out * FP32_BYTES
            layers.append(
                LayerWorkload(
                    name=f"FC{idx + 1}",
                    kind=LayerKind.FULLY_CONNECTED,
                    flops=2 * batch * fan_in * fan_out,
                    input_bytes=batch * fan_in * FP32_BYTES,
                    weight_bytes=weight_bytes,
                    output_bytes=batch * fan_out * FP32_BYTES,
                    working_set_bytes=weight_bytes + (fan_in + fan_out) * FP32_BYTES,
                )
            )
        return layers

    def layers(self) -> List[LayerWorkload]:
        """All network stages in execution order."""
        return [self.conv_layer(), self.primary_caps_layer(), self.routing_layer(), *self.fc_layers()]

    # -- aggregates ---------------------------------------------------------------

    def total_flops(self) -> int:
        """FLOPs of the whole network for one batched inference."""
        return sum(layer.flops for layer in self.layers())

    def flops_by_kind(self) -> Dict[LayerKind, int]:
        """FLOPs aggregated per stage category."""
        totals: Dict[LayerKind, int] = {kind: 0 for kind in LayerKind}
        for layer in self.layers():
            totals[layer.kind] += layer.flops
        return totals

    def host_layers(self) -> List[LayerWorkload]:
        """Stages PIM-CapsNet keeps on the host GPU (Conv / PrimaryCaps / FC)."""
        return [layer for layer in self.layers() if layer.kind is not LayerKind.ROUTING]

    def describe(self) -> str:
        """Multi-line human readable summary (used by examples)."""
        lines = [self.config.describe()]
        for layer in self.layers():
            lines.append(
                f"  {layer.name:<12} kind={layer.kind.value:<13} "
                f"GFLOPs={layer.flops / 1e9:8.3f} traffic={layer.traffic_bytes / 1e6:9.2f} MB"
            )
        return "\n".join(lines)
