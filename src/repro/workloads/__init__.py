"""Analytic workload models of CapsNet inference.

The performance experiments of the paper never need the numerical values
flowing through the network -- they depend on *how much* work and data
movement each layer generates.  This package captures that:

* :mod:`repro.workloads.benchmarks` -- the 12 benchmark configurations of
  Table 1 (Caps-MN1..3, Caps-CF1..3, Caps-EN1..3, Caps-SV1..3).
* :mod:`repro.workloads.catalog` -- declarative :class:`WorkloadSpec`
  definitions of arbitrary capsule networks and the immutable
  :class:`WorkloadCatalog` resolving benchmark names (Table-1 seed plus
  user-defined specs).
* :mod:`repro.workloads.parallelism` -- Table 2: along which of the B / L / H
  dimensions each routing equation can be parallelized.
* :mod:`repro.workloads.rp_model` -- per-equation FLOP counts, intermediate
  variable footprints and memory traffic of the routing procedure.
* :mod:`repro.workloads.layers_model` -- op/traffic models of the Conv,
  PrimaryCaps and FC (decoder) layers plus the whole-network aggregation
  consumed by the GPU and PIM simulators.
"""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    BenchmarkConfig,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.catalog import (
    RoutingAlgorithm,
    WorkloadCatalog,
    WorkloadSpec,
    default_catalog,
    routing_workload_for,
)
from repro.workloads.parallelism import (
    Dimension,
    EQUATION_PARALLELISM,
    RoutingEquation,
    parallelizable_dimensions,
    supports_dimension,
)
from repro.workloads.rp_model import IntermediateFootprint, RoutingWorkload
from repro.workloads.em_model import EMFootprint, EMRoutingWorkload
from repro.workloads.layers_model import CapsNetWorkload, LayerKind, LayerWorkload

__all__ = [
    "BENCHMARKS",
    "BenchmarkConfig",
    "benchmark_names",
    "get_benchmark",
    "RoutingAlgorithm",
    "WorkloadCatalog",
    "WorkloadSpec",
    "default_catalog",
    "routing_workload_for",
    "Dimension",
    "EQUATION_PARALLELISM",
    "RoutingEquation",
    "parallelizable_dimensions",
    "supports_dimension",
    "IntermediateFootprint",
    "RoutingWorkload",
    "EMFootprint",
    "EMRoutingWorkload",
    "CapsNetWorkload",
    "LayerKind",
    "LayerWorkload",
]
