"""Analytic model of the routing procedure's computation and data movement.

The model follows the paper's accounting:

* **FLOP counts** use the per-equation expressions that also underlie the
  paper's per-vault workload model ``E`` (Eqs. 6-11): a length-``n`` dot
  product costs ``2n - 1`` operations, the squash of a ``CH``-dimensional
  vector costs ``3 CH + 19`` operations (multiplies, adds, the division and
  the inverse square root), and the softmax over ``NH`` entries costs
  ``4 NH`` operations per low-level capsule (exponentials, the accumulation
  and the normalizing divisions).
* **Variable footprints** count the FP32 storage of every operand of the
  routing procedure; the non-shareable intermediates (u_hat, s, v, b, c) are
  what Fig. 6(a) compares against GPU on-chip storage.
* **Traffic** is reported per equation and per iteration so the GPU model can
  decide which operands have to be re-streamed from off-chip memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.parallelism import RoutingEquation

#: Bytes per FP32 scalar.
FP32_BYTES = 4


@dataclass(frozen=True)
class IntermediateFootprint:
    """Sizes (bytes) of the routing procedure's operands for one benchmark.

    Attributes:
        low_capsules: input capsules ``u`` (``NB * NL * CL`` scalars).
        weights: transformation matrices ``W`` (``NL * NH * CL * CH``).
        predictions: prediction vectors ``u_hat`` (``NB * NL * NH * CH``).
        logits: agreement accumulators ``b`` (``NL * NH``).
        coefficients: routing coefficients ``c`` (``NL * NH``).
        weighted_sums: pre-squash sums ``s`` (``NB * NH * CH``).
        high_capsules: output capsules ``v`` (``NB * NH * CH``).
    """

    low_capsules: int
    weights: int
    predictions: int
    logits: int
    coefficients: int
    weighted_sums: int
    high_capsules: int

    @property
    def intermediate_bytes(self) -> int:
        """Bytes of the *non-shareable intermediates* (u_hat, b, c, s, v).

        These are the variables the paper identifies as exceeding GPU on-chip
        storage (Fig. 6a); the inputs ``u`` and the weights ``W`` are not
        counted because they are produced/consumed by adjacent layers.
        """
        return (
            self.predictions
            + self.logits
            + self.coefficients
            + self.weighted_sums
            + self.high_capsules
        )

    @property
    def total_bytes(self) -> int:
        """Bytes of every routing operand including inputs and weights."""
        return self.intermediate_bytes + self.low_capsules + self.weights

    def ratio_to_storage(self, on_chip_bytes: int) -> float:
        """Ratio of intermediate variables to a given on-chip storage size (Fig. 6a)."""
        if on_chip_bytes <= 0:
            raise ValueError("on_chip_bytes must be positive")
        return self.intermediate_bytes / float(on_chip_bytes)

    def as_dict(self) -> Dict[str, int]:
        """Per-variable byte sizes keyed by the paper's symbol names."""
        return {
            "u": self.low_capsules,
            "W": self.weights,
            "u_hat": self.predictions,
            "b": self.logits,
            "c": self.coefficients,
            "s": self.weighted_sums,
            "v": self.high_capsules,
        }


@dataclass(frozen=True)
class EquationTraffic:
    """Ideal (touch-each-operand-once) traffic of one routing equation."""

    read_bytes: int
    write_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


class RoutingWorkload:
    """Computation / data-movement model of the routing procedure.

    Args:
        config: the benchmark configuration (Table 1 row).
    """

    def __init__(self, config: BenchmarkConfig) -> None:
        self.config = config

    # -- shorthands -----------------------------------------------------------

    @property
    def _nb(self) -> int:
        return self.config.batch_size

    @property
    def _nl(self) -> int:
        return self.config.num_low_capsules

    @property
    def _nh(self) -> int:
        return self.config.num_high_capsules

    @property
    def _cl(self) -> int:
        return self.config.low_dim

    @property
    def _ch(self) -> int:
        return self.config.high_dim

    @property
    def iterations(self) -> int:
        """Number of routing iterations ``I``."""
        return self.config.routing_iterations

    # -- variable footprints ---------------------------------------------------

    def footprint(self) -> IntermediateFootprint:
        """Byte sizes of every routing operand."""
        nb, nl, nh, cl, ch = self._nb, self._nl, self._nh, self._cl, self._ch
        return IntermediateFootprint(
            low_capsules=nb * nl * cl * FP32_BYTES,
            weights=nl * nh * cl * ch * FP32_BYTES,
            predictions=nb * nl * nh * ch * FP32_BYTES,
            logits=nl * nh * FP32_BYTES,
            coefficients=nl * nh * FP32_BYTES,
            weighted_sums=nb * nh * ch * FP32_BYTES,
            high_capsules=nb * nh * ch * FP32_BYTES,
        )

    # -- FLOP counts -----------------------------------------------------------

    def flops_prediction(self) -> int:
        """Eq. 1: ``u_hat = u x W`` for every (batch, L, H) triple (executed once)."""
        return self._nb * self._nl * self._nh * self._ch * (2 * self._cl - 1)

    def flops_weighted_sum(self) -> int:
        """Eq. 2: ``s_j = sum_i c_ij u_hat`` per iteration."""
        return self._nb * self._nh * self._ch * (2 * self._nl - 1)

    def flops_squash(self) -> int:
        """Eq. 3: squash of every high capsule per iteration (``3 CH + 19`` each)."""
        return self._nb * self._nh * (3 * self._ch + 19)

    def flops_agreement(self) -> int:
        """Eq. 4: agreement dot products + accumulation per iteration."""
        dot = self._nb * self._nl * self._nh * (2 * self._ch - 1)
        accumulate = self._nl * self._nh * self._nb  # sum over the batch, then += b
        return dot + accumulate

    def flops_softmax(self) -> int:
        """Eq. 5: softmax over the H dimension for every low capsule per iteration."""
        return self._nl * 4 * self._nh

    def flops_per_equation(self) -> Dict[RoutingEquation, int]:
        """FLOPs of each equation for the whole routing procedure (all iterations)."""
        i = self.iterations
        return {
            RoutingEquation.PREDICTION: self.flops_prediction(),
            RoutingEquation.WEIGHTED_SUM: i * self.flops_weighted_sum(),
            RoutingEquation.SQUASH: i * self.flops_squash(),
            RoutingEquation.AGREEMENT: i * self.flops_agreement(),
            RoutingEquation.SOFTMAX: i * self.flops_softmax(),
        }

    def total_flops(self) -> int:
        """Total routing FLOPs including Eq. 1 and all iterations."""
        return sum(self.flops_per_equation().values())

    def iteration_flops(self) -> int:
        """FLOPs of a single routing iteration (Eqs. 2-5)."""
        return (
            self.flops_weighted_sum()
            + self.flops_squash()
            + self.flops_agreement()
            + self.flops_softmax()
        )

    # -- special function counts -------------------------------------------------

    def special_function_counts(self) -> Dict[str, int]:
        """Number of exp / division / inverse-sqrt evaluations per full routing run.

        Used by the PIM PE model (these lower to multi-step PE flows) and by
        the accuracy analysis.
        """
        i = self.iterations
        return {
            "exp": i * self._nl * self._nh,
            "div": i * (self._nl * self._nh + self._nb * self._nh),
            "inv_sqrt": i * self._nb * self._nh,
        }

    # -- traffic ----------------------------------------------------------------

    def traffic_per_equation(self) -> Dict[RoutingEquation, EquationTraffic]:
        """Ideal per-equation traffic for a *single* iteration (Eq. 1 once).

        Every operand is counted exactly once per use; the GPU / PIM models
        apply their own reuse and re-streaming policies on top of this.
        """
        fp = self.footprint()
        return {
            RoutingEquation.PREDICTION: EquationTraffic(
                read_bytes=fp.low_capsules + fp.weights,
                write_bytes=fp.predictions,
            ),
            RoutingEquation.SOFTMAX: EquationTraffic(
                read_bytes=fp.logits, write_bytes=fp.coefficients
            ),
            RoutingEquation.WEIGHTED_SUM: EquationTraffic(
                read_bytes=fp.predictions + fp.coefficients,
                write_bytes=fp.weighted_sums,
            ),
            RoutingEquation.SQUASH: EquationTraffic(
                read_bytes=fp.weighted_sums, write_bytes=fp.high_capsules
            ),
            RoutingEquation.AGREEMENT: EquationTraffic(
                read_bytes=fp.predictions + fp.high_capsules + fp.logits,
                write_bytes=fp.logits,
            ),
        }

    def iteration_traffic_bytes(self) -> int:
        """Ideal traffic of one routing iteration (Eqs. 2-5)."""
        traffic = self.traffic_per_equation()
        return sum(
            traffic[eq].total_bytes
            for eq in (
                RoutingEquation.SOFTMAX,
                RoutingEquation.WEIGHTED_SUM,
                RoutingEquation.SQUASH,
                RoutingEquation.AGREEMENT,
            )
        )

    def total_traffic_bytes(self) -> int:
        """Ideal traffic for the whole routing procedure."""
        traffic = self.traffic_per_equation()
        return (
            traffic[RoutingEquation.PREDICTION].total_bytes
            + self.iterations * self.iteration_traffic_bytes()
        )

    # -- synchronization ----------------------------------------------------------

    def aggregation_points(self) -> Dict[str, int]:
        """Count of aggregation (reduction) operations per full routing run.

        Aggregations are the source of the barrier synchronizations the paper
        identifies as the second stall contributor on GPUs:

        * Eq. 2 reduces over the L dimension for every (batch, H capsule).
        * Eq. 4 reduces over the batch dimension for every (L, H) pair.
        * Eq. 5 reduces over the H dimension for every L capsule
          (softmax denominator).
        """
        i = self.iterations
        return {
            "eq2_reduce_over_L": i * self._nb * self._nh,
            "eq4_reduce_over_B": i * self._nl * self._nh,
            "eq5_reduce_over_H": i * self._nl,
        }

    def total_aggregations(self) -> int:
        """Total number of reduction groups across the routing procedure."""
        return sum(self.aggregation_points().values())

    def synchronization_groups(self, warp_size: int = 32) -> Dict[str, int]:
        """Barrier-synchronized partial-reduction groups per full routing run.

        On a GPU each reduction is performed by thread groups of roughly
        ``warp_size`` partial values that synchronize through shared memory;
        the number of barrier events therefore scales with the *amount of
        data being reduced*, not just with the number of reduction outputs.
        This is what makes the synchronization overhead grow with the batch
        size (the paper's Observation 1: batching does not help the RP).
        """
        if warp_size < 1:
            raise ValueError("warp_size must be positive")
        i = self.iterations

        def groups(elements: int) -> int:
            return max(1, -(-elements // warp_size))

        return {
            "eq2_reduce_over_L": i * self._nb * self._nh * groups(self._nl),
            "eq4_reduce_over_B": i * self._nl * self._nh * groups(self._nb),
            "eq5_reduce_over_H": i * self._nl * groups(self._nh),
        }

    def total_synchronization_groups(self, warp_size: int = 32) -> int:
        """Total barrier-synchronized groups across the routing procedure."""
        return sum(self.synchronization_groups(warp_size).values())


def footprints_for(benchmarks: Mapping[str, BenchmarkConfig]) -> Dict[str, IntermediateFootprint]:
    """Convenience helper: footprints of several benchmarks keyed by name."""
    return {name: RoutingWorkload(cfg).footprint() for name, cfg in benchmarks.items()}
