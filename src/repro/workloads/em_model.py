"""Analytic workload model of Expectation-Maximization routing.

The paper's in-memory optimizations are "generally applicable to different
routing algorithms" (Sec. 2.2 / Sec. 4); EM routing (Hinton et al., 2018) is
the other algorithm it names.  This module models the EM routing procedure's
computation and data movement with the same interface style as
:class:`repro.workloads.rp_model.RoutingWorkload`, so the GPU simulator and
the distributor's inputs can be derived for it as well:

* the **E-step** computes, for every (batch, low capsule, high capsule)
  triple, a Gaussian log-likelihood over the ``CH`` pose dimensions and a
  responsibility softmax over the high capsules,
* the **M-step** re-estimates each high capsule's mean and variance from the
  responsibility-weighted votes and updates the capsule activation.

Like dynamic routing, the dominant operand is the vote tensor (the same size
as the prediction vectors u_hat), the responsibilities play the role of the
routing coefficients (but are per-batch, i.e. ``NB`` times larger), and both
steps contain aggregations that generate synchronization on a GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.rp_model import FP32_BYTES, IntermediateFootprint


@dataclass(frozen=True)
class EMFootprint:
    """Byte sizes of the EM routing operands.

    Attributes:
        votes: vote vectors (``NB * NL * NH * CH`` scalars; same as u_hat).
        responsibilities: per-batch responsibilities (``NB * NL * NH``).
        means: Gaussian means (``NB * NH * CH``).
        variances: Gaussian variances (``NB * NH * CH``).
        activations: high-capsule activations (``NB * NH``).
        low_capsules: input capsules (``NB * NL * CL``).
        weights: transformation matrices (``NL * NH * CL * CH``).
    """

    votes: int
    responsibilities: int
    means: int
    variances: int
    activations: int
    low_capsules: int
    weights: int

    @property
    def intermediate_bytes(self) -> int:
        """Non-shareable intermediates (votes, responsibilities, Gaussian stats)."""
        return (
            self.votes
            + self.responsibilities
            + self.means
            + self.variances
            + self.activations
        )

    @property
    def total_bytes(self) -> int:
        return self.intermediate_bytes + self.low_capsules + self.weights


class EMRoutingWorkload:
    """Computation / data-movement model of EM routing for one benchmark."""

    def __init__(self, config: BenchmarkConfig) -> None:
        self.config = config

    # -- shorthands -----------------------------------------------------------

    @property
    def iterations(self) -> int:
        return self.config.routing_iterations

    # -- footprints ------------------------------------------------------------

    def footprint(self) -> EMFootprint:
        cfg = self.config
        nb, nl, nh, cl, ch = (
            cfg.batch_size,
            cfg.num_low_capsules,
            cfg.num_high_capsules,
            cfg.low_dim,
            cfg.high_dim,
        )
        return EMFootprint(
            votes=nb * nl * nh * ch * FP32_BYTES,
            responsibilities=nb * nl * nh * FP32_BYTES,
            means=nb * nh * ch * FP32_BYTES,
            variances=nb * nh * ch * FP32_BYTES,
            activations=nb * nh * FP32_BYTES,
            low_capsules=nb * nl * cl * FP32_BYTES,
            weights=nl * nh * cl * ch * FP32_BYTES,
        )

    def dynamic_equivalent_footprint(self) -> IntermediateFootprint:
        """The dynamic-routing footprint sharing the same vote tensor.

        Useful for apples-to-apples comparisons of the two algorithms'
        memory pressure.
        """
        cfg = self.config
        nb, nl, nh, cl, ch = (
            cfg.batch_size,
            cfg.num_low_capsules,
            cfg.num_high_capsules,
            cfg.low_dim,
            cfg.high_dim,
        )
        return IntermediateFootprint(
            low_capsules=nb * nl * cl * FP32_BYTES,
            weights=nl * nh * cl * ch * FP32_BYTES,
            predictions=nb * nl * nh * ch * FP32_BYTES,
            logits=nl * nh * FP32_BYTES,
            coefficients=nl * nh * FP32_BYTES,
            weighted_sums=nb * nh * ch * FP32_BYTES,
            high_capsules=nb * nh * ch * FP32_BYTES,
        )

    # -- FLOP counts -------------------------------------------------------------

    def flops_votes(self) -> int:
        """Vote computation (identical to Eq. 1 of dynamic routing)."""
        cfg = self.config
        return (
            cfg.batch_size
            * cfg.num_low_capsules
            * cfg.num_high_capsules
            * cfg.high_dim
            * (2 * cfg.low_dim - 1)
        )

    def flops_e_step(self) -> int:
        """One E-step: Gaussian log-likelihoods + responsibility softmax."""
        cfg = self.config
        pairs = cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules
        # Per pair: (vote - mean)^2 / var summed over CH  ->  ~4*CH ops,
        # plus the exponential and the normalizing division.
        return pairs * (4 * cfg.high_dim + 2) + cfg.batch_size * cfg.num_low_capsules * (
            cfg.num_high_capsules - 1
        )

    def flops_m_step(self) -> int:
        """One M-step: weighted means, variances and activations."""
        cfg = self.config
        pairs = cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules
        # Mean and variance accumulations are two MACs per vote element,
        # plus the per-capsule normalizations and the activation logistic.
        return pairs * (4 * cfg.high_dim) + cfg.batch_size * cfg.num_high_capsules * (
            3 * cfg.high_dim + 8
        )

    def iteration_flops(self) -> int:
        """FLOPs of one EM iteration."""
        return self.flops_e_step() + self.flops_m_step()

    def total_flops(self) -> int:
        """FLOPs of the whole EM routing pass (votes + all iterations)."""
        return self.flops_votes() + self.iterations * self.iteration_flops()

    # -- traffic -------------------------------------------------------------------

    def iteration_traffic_bytes(self) -> int:
        """Ideal traffic of one EM iteration (votes re-read twice, stats updated)."""
        fp = self.footprint()
        return (
            2 * fp.votes
            + 2 * fp.responsibilities
            + 2 * (fp.means + fp.variances)
            + 2 * fp.activations
        )

    def total_traffic_bytes(self) -> int:
        fp = self.footprint()
        vote_stage = fp.low_capsules + fp.weights + fp.votes
        return vote_stage + self.iterations * self.iteration_traffic_bytes()

    # -- special functions / aggregations ---------------------------------------------

    def special_function_counts(self) -> Dict[str, int]:
        """exp / div / inverse-sqrt evaluations per EM routing pass."""
        cfg = self.config
        i = self.iterations
        pairs = cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules
        return {
            "exp": i * (pairs + cfg.batch_size * cfg.num_high_capsules),
            "div": i * (pairs + 2 * cfg.batch_size * cfg.num_high_capsules * cfg.high_dim),
            "inv_sqrt": 0,
        }

    def aggregation_points(self) -> Dict[str, int]:
        """Reduction groups per EM routing pass (the synchronization drivers)."""
        cfg = self.config
        i = self.iterations
        return {
            "e_step_softmax_over_H": i * cfg.batch_size * cfg.num_low_capsules,
            "m_step_reduce_over_L": i * cfg.batch_size * cfg.num_high_capsules * 2,
        }

    def total_aggregations(self) -> int:
        return sum(self.aggregation_points().values())
