"""Declarative capsule-network workload specs and the workload catalog.

PR 2 made *hardware* a first-class input (:class:`~repro.api.scenario.
Scenario`); this module opens the other half of the design space: the
*workload*.  A :class:`WorkloadSpec` describes one capsule network the way
Table 1 describes the paper's twelve benchmarks -- dataset shape, batch
size, capsule counts and dimensions, routing algorithm and iteration count
-- as a frozen, validated, JSON-round-trippable value::

    spec = WorkloadSpec(
        name="Caps-Custom",
        dataset={"name": "TRAFFIC-SIGNS", "image_shape": [3, 48, 48], "num_classes": 43},
        batch_size=128,
        num_low_capsules=2048,
        num_high_capsules=43,
        routing_iterations=4,
    )

The :class:`WorkloadCatalog` is the immutable name -> spec mapping every
run resolves benchmarks through: :func:`default_catalog` seeds it with the
Table-1 networks, and :meth:`WorkloadCatalog.with_specs` merges user-defined
specs on top, so custom networks flow through the same engine, figures and
comparison tooling as the paper's benchmarks.  Lookups are case-insensitive
(one shared normalization for the CLI, :class:`~repro.api.scenario.Scenario`
validation and the engine).

**Routing algorithms.**  ``routing`` accepts ``dynamic`` (Sabour et al.) or
``em`` (Hinton et al.); :meth:`WorkloadSpec.routing_workload` returns the
matching analytic model (:class:`~repro.workloads.rp_model.RoutingWorkload`
or :class:`~repro.workloads.em_model.EMRoutingWorkload`).  The performance
figures simulate EM workloads through the dynamic-equivalent footprint (the
vote tensor dominates both algorithms identically -- see
:mod:`repro.workloads.em_model`), so an ``em`` spec runs everywhere a
``dynamic`` one does.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.capsnet.datasets import DATASET_SPECS, DatasetSpec
from repro.workloads.benchmarks import BENCHMARKS, BenchmarkConfig


class RoutingAlgorithm(str, Enum):
    """Routing algorithm of a capsule network workload."""

    DYNAMIC = "dynamic"
    EM = "em"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def routing_algorithm(value: Union[str, "RoutingAlgorithm"]) -> "RoutingAlgorithm":
    """Coerce a routing-algorithm name, with a helpful error on typos."""
    if isinstance(value, RoutingAlgorithm):
        return value
    try:
        return RoutingAlgorithm(str(value).strip().lower())
    except ValueError:
        known = [algorithm.value for algorithm in RoutingAlgorithm]
        raise ValueError(
            f"unknown routing algorithm {value!r}; choose from {known}"
        ) from None


def _int_field(value: object, label: str) -> int:
    """Coerce a numeric field to int, rejecting non-integral values."""
    if isinstance(value, int):
        return value
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"{label} must be a number, got {value!r}") from None
    if not number.is_integer():
        raise ValueError(f"{label} must be an integer, got {value!r}")
    return int(number)


def _canonical_dataset_name(name: str) -> str:
    """Normalize a dataset name the way :func:`dataset_for_benchmark` does."""
    return str(name).strip().upper().replace(" ", "-").replace("_", "-")


def _dataset_from(value: object) -> Union[str, DatasetSpec]:
    """Resolve a workload's dataset field: a catalog name or an inline spec."""
    if isinstance(value, DatasetSpec):
        return _validated_dataset_spec(value)
    if isinstance(value, Mapping):
        known = {f.name for f in dataclasses.fields(DatasetSpec)}
        unknown = sorted(set(value) - known)
        if unknown:
            raise ValueError(
                f"unknown dataset key(s) {unknown}; valid keys: {sorted(known)}"
            )
        missing = sorted(known - set(value))
        if missing:
            raise ValueError(f"inline dataset spec is missing key(s) {missing}")
        shape = value["image_shape"]
        try:
            shape = tuple(_int_field(dim, "image_shape dimension") for dim in shape)
        except TypeError:
            raise ValueError(
                f"dataset image_shape must be (channels, height, width), got {shape!r}"
            ) from None
        spec = DatasetSpec(
            name=str(value["name"]),
            image_shape=shape,  # type: ignore[arg-type]
            num_classes=_int_field(value["num_classes"], "num_classes"),
        )
        return _validated_dataset_spec(spec)
    if isinstance(value, str):
        canonical = _canonical_dataset_name(value)
        if canonical not in DATASET_SPECS:
            raise ValueError(
                f"unknown dataset {value!r}; known datasets: {sorted(DATASET_SPECS)} "
                f"(or pass an inline spec with name/image_shape/num_classes)"
            )
        return canonical
    raise ValueError(
        f"dataset must be a known dataset name or an inline spec mapping, "
        f"got {type(value).__name__}"
    )


def _validated_dataset_spec(spec: DatasetSpec) -> DatasetSpec:
    if not spec.name or not str(spec.name).strip():
        raise ValueError("dataset name must be a non-empty string")
    shape = tuple(spec.image_shape)
    if len(shape) != 3 or any(int(dim) < 1 for dim in shape):
        raise ValueError(
            f"dataset image_shape must be three positive dimensions "
            f"(channels, height, width), got {spec.image_shape!r}"
        )
    if int(spec.num_classes) < 2:
        raise ValueError("dataset num_classes must be >= 2")
    if shape != spec.image_shape:
        spec = dataclasses.replace(spec, image_shape=shape)
    return spec


@dataclass(frozen=True)
class WorkloadSpec:
    """One declarative capsule-network workload (frozen, hashable).

    Attributes:
        name: workload name used in every report and lookup.
        dataset: a known dataset name (``"MNIST"``, case-insensitive) or an
            inline :class:`~repro.capsnet.datasets.DatasetSpec` for custom
            datasets.
        batch_size: batched input sets processed per inference (``NB``).
        num_low_capsules: number of low-level capsules (``NL``).
        num_high_capsules: number of high-level capsules (``NH``).
        routing_iterations: routing iterations (``I``).
        low_dim: scalars per low-level capsule (``CL``).
        high_dim: scalars per high-level capsule (``CH``).
        routing: routing algorithm, ``dynamic`` or ``em``.
    """

    name: str
    dataset: Union[str, DatasetSpec]
    batch_size: int
    num_low_capsules: int
    num_high_capsules: int
    routing_iterations: int = 3
    low_dim: int = 8
    high_dim: int = 16
    routing: RoutingAlgorithm = RoutingAlgorithm.DYNAMIC

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("workload name must be a non-empty string")
        object.__setattr__(self, "name", str(self.name).strip())
        object.__setattr__(self, "dataset", _dataset_from(self.dataset))
        object.__setattr__(self, "routing", routing_algorithm(self.routing))
        for field_name in (
            "batch_size",
            "num_low_capsules",
            "num_high_capsules",
            "routing_iterations",
            "low_dim",
            "high_dim",
        ):
            value = _int_field(getattr(self, field_name), field_name)
            object.__setattr__(self, field_name, value)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1")

    # ---------------------------------------------------------------- dataset

    @property
    def dataset_name(self) -> str:
        """The dataset's name (catalog key or the inline spec's own name)."""
        return self.dataset if isinstance(self.dataset, str) else self.dataset.name

    @property
    def dataset_spec(self) -> DatasetSpec:
        """Shape-level description of the workload's dataset."""
        if isinstance(self.dataset, DatasetSpec):
            return self.dataset
        return DATASET_SPECS[self.dataset]

    @property
    def is_custom_dataset(self) -> bool:
        """Whether the dataset is an inline spec rather than a Table-1 one."""
        return isinstance(self.dataset, DatasetSpec)

    # ------------------------------------------------------------ conversions

    @classmethod
    def from_benchmark(cls, config: BenchmarkConfig) -> "WorkloadSpec":
        """The spec equivalent of a Table-1 :class:`BenchmarkConfig`."""
        return cls(
            name=config.name,
            dataset=config.custom_dataset if config.custom_dataset else config.dataset,
            batch_size=config.batch_size,
            num_low_capsules=config.num_low_capsules,
            num_high_capsules=config.num_high_capsules,
            routing_iterations=config.routing_iterations,
            low_dim=config.low_dim,
            high_dim=config.high_dim,
            routing=config.routing,
        )

    def to_benchmark(self) -> BenchmarkConfig:
        """The :class:`BenchmarkConfig` the simulators consume."""
        return BenchmarkConfig(
            name=self.name,
            dataset=self.dataset_name,
            batch_size=self.batch_size,
            num_low_capsules=self.num_low_capsules,
            num_high_capsules=self.num_high_capsules,
            routing_iterations=self.routing_iterations,
            low_dim=self.low_dim,
            high_dim=self.high_dim,
            routing=self.routing.value,
            custom_dataset=self.dataset if self.is_custom_dataset else None,
        )

    def routing_workload(self):
        """The analytic routing model matching :attr:`routing`."""
        return routing_workload_for(self.to_benchmark())

    # ---------------------------------------------------------- serialization

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        """Build a spec from a plain dictionary (JSON-shaped).

        ``name``, ``dataset``, ``batch_size``, ``num_low_capsules`` and
        ``num_high_capsules`` are required; the remaining keys default to the
        CapsNet-MNIST structure.  Unknown keys raise :class:`ValueError`.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"workload data must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown workload key(s) {unknown}; valid keys: {sorted(known)}"
            )
        required = ("name", "dataset", "batch_size", "num_low_capsules", "num_high_capsules")
        missing = sorted(set(required) - set(data))
        if missing:
            raise ValueError(f"workload spec is missing required key(s) {missing}")
        return cls(**{key: data[key] for key in data})  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) dictionary round-tripping through :meth:`from_dict`."""
        if isinstance(self.dataset, DatasetSpec):
            dataset: object = {
                "name": self.dataset.name,
                "image_shape": list(self.dataset.image_shape),
                "num_classes": self.dataset.num_classes,
            }
        else:
            dataset = self.dataset
        return {
            "name": self.name,
            "dataset": dataset,
            "batch_size": self.batch_size,
            "num_low_capsules": self.num_low_capsules,
            "num_high_capsules": self.num_high_capsules,
            "routing_iterations": self.routing_iterations,
            "low_dim": self.low_dim,
            "high_dim": self.high_dim,
            "routing": self.routing.value,
        }

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "WorkloadSpec":
        """Load a spec from a JSON file (``name`` defaults to the file stem)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read workload file {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON in workload file {path}: {error}") from None
        if isinstance(data, Mapping) and "name" not in data:
            data = {**data, "name": path.stem}
        return cls.from_dict(data)

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the spec as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    def content_hash(self) -> str:
        """Content hash (SHA-256 hex) of the spec's canonical JSON form.

        Two specs hash equal exactly when :meth:`to_dict` matches -- the
        workload half of the persistent simulation cache's key.
        """
        from repro.engine.diskcache import canonical_digest

        return canonical_digest(self.to_dict())

    # ------------------------------------------------------------ convenience

    @property
    def network_scale(self) -> float:
        """The L * H * iterations size proxy (see :class:`BenchmarkConfig`)."""
        return float(
            self.num_low_capsules * self.num_high_capsules * self.routing_iterations
        )

    def describe(self) -> str:
        """Human readable one-line description."""
        return (
            f"{self.name}: {self.dataset_name}, BS={self.batch_size}, "
            f"L={self.num_low_capsules}x{self.low_dim}, "
            f"H={self.num_high_capsules}x{self.high_dim}, "
            f"{self.routing.value} routing, iter={self.routing_iterations}"
        )


def routing_workload_for(config: BenchmarkConfig):
    """The analytic routing model matching a benchmark's routing algorithm."""
    # Imported lazily: rp_model/em_model import repro.workloads.benchmarks.
    from repro.workloads.em_model import EMRoutingWorkload
    from repro.workloads.rp_model import RoutingWorkload

    if routing_algorithm(config.routing) is RoutingAlgorithm.EM:
        return EMRoutingWorkload(config)
    return RoutingWorkload(config)


class WorkloadCatalog:
    """Immutable, case-insensitively keyed name -> :class:`WorkloadSpec` map.

    A catalog is the single benchmark-resolution authority of one run: the
    scenario layer validates ``benchmarks`` selections against it, the engine
    resolves names through it, and the CLI lists it.  :func:`default_catalog`
    holds the Table-1 seed; :meth:`with_specs` layers user-defined specs on
    top (a spec reusing an existing name replaces it in place, new names
    append after the seed).
    """

    def __init__(self, specs: Iterable[WorkloadSpec] = ()) -> None:
        self._specs: Dict[str, WorkloadSpec] = {}
        self._canonical: Dict[str, str] = {}
        self._benchmarks: Dict[str, BenchmarkConfig] = {}
        for spec in specs:
            self._add(spec)

    def _add(self, spec: WorkloadSpec, benchmark: Optional[BenchmarkConfig] = None) -> None:
        if not isinstance(spec, WorkloadSpec):
            raise ValueError(
                f"catalog entries must be WorkloadSpec, got {type(spec).__name__}"
            )
        config = benchmark or spec.to_benchmark()
        existing = self._canonical.get(spec.name.casefold())
        if existing is not None and existing != spec.name:
            # Same name up to case: replace the entry *in place* (the merged
            # spec's casing wins, the catalog position stays).
            self._specs = {
                (spec.name if key == existing else key): value
                for key, value in self._specs.items()
            }
            self._benchmarks = {
                (spec.name if key == existing else key): value
                for key, value in self._benchmarks.items()
            }
        self._canonical[spec.name.casefold()] = spec.name
        self._specs[spec.name] = spec
        self._benchmarks[spec.name] = config

    # -------------------------------------------------------------- factories

    @classmethod
    def default(cls) -> "WorkloadCatalog":
        """The Table-1 catalog (shared immutable instance)."""
        return default_catalog()

    def with_specs(self, specs: Iterable[WorkloadSpec]) -> "WorkloadCatalog":
        """A new catalog with ``specs`` merged on top of this one."""
        merged = WorkloadCatalog()
        for name, spec in self._specs.items():
            merged._add(spec, self._benchmarks[name])
        for spec in specs:
            merged._add(spec)
        return merged

    # ---------------------------------------------------------------- lookups

    def canonical_name(self, name: str) -> str:
        """Resolve a (case-insensitive) name to its canonical catalog key."""
        canonical = self._canonical.get(str(name).strip().casefold())
        if canonical is None:
            raise KeyError(
                f"unknown workload {name!r}; known workloads: {self.names()}"
            )
        return canonical

    def get(self, name: str) -> WorkloadSpec:
        """Look up a workload spec by (case-insensitive) name."""
        return self._specs[self.canonical_name(name)]

    def benchmark(self, name: str) -> BenchmarkConfig:
        """The :class:`BenchmarkConfig` of one workload, by name."""
        return self._benchmarks[self.canonical_name(name)]

    def names(self) -> List[str]:
        """Canonical workload names: Table-1 order first, user specs after."""
        return list(self._specs)

    def specs(self) -> Tuple[WorkloadSpec, ...]:
        """Every spec, in catalog order."""
        return tuple(self._specs.values())

    # --------------------------------------------------------------- protocol

    def __contains__(self, name: object) -> bool:
        return str(name).strip().casefold() in self._canonical

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadCatalog):
            return NotImplemented
        return self.specs() == other.specs()

    def __hash__(self) -> int:
        return hash(self.specs())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkloadCatalog({len(self)} workloads)"


def _build_default_catalog() -> WorkloadCatalog:
    catalog = WorkloadCatalog()
    for name, config in BENCHMARKS.items():
        # Seed with the canonical Table-1 BenchmarkConfig objects so
        # ``catalog.benchmark(name) is BENCHMARKS[name]`` (golden invariant).
        catalog._add(WorkloadSpec.from_benchmark(config), config)
    return catalog


#: The Table-1 catalog, built once (the catalog itself is immutable).
_DEFAULT_CATALOG: Optional[WorkloadCatalog] = None


def default_catalog() -> WorkloadCatalog:
    """The immutable catalog seeded with the paper's Table-1 networks."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = _build_default_catalog()
    return _DEFAULT_CATALOG
