"""GPU timing / energy model (the paper's host processor and baseline).

The paper characterizes CapsNet inference on NVIDIA GPUs (Sec. 3) and uses a
Tesla P100 as the host processor of PIM-CapsNet (Table 4).  Physical GPUs and
NVprofiler traces are not available offline, so this package provides an
analytic model that reproduces the characterization from first principles:

* :mod:`repro.gpu.devices` -- a catalog of the GPU configurations the paper
  references (K40m, GTX 1080Ti, Tesla P100, RTX 2080Ti, Tesla V100) with
  their compute throughput, on-chip storage and memory bandwidth.
* :mod:`repro.gpu.kernels` -- the per-kernel cost model (compute, bandwidth,
  latency-bound memory, synchronization, fixed overhead) and the resulting
  stall attribution used for Fig. 5.
* :mod:`repro.gpu.simulator` -- executes a :class:`repro.workloads.CapsNetWorkload`
  on a device model and reports per-layer and per-iteration timings
  (Figs. 4, 6b and 7).
* :mod:`repro.gpu.energy` -- the energy model used for the baseline side of
  Figs. 15 and 17.
"""

from repro.gpu.devices import (
    GPU_DEVICES,
    GPUDevice,
    MemoryTechnology,
    get_device,
)
from repro.gpu.kernels import GPUCostParameters, KernelTiming, StallBreakdown, StallClass
from repro.gpu.simulator import GPUSimulator, InferenceTiming, LayerTiming, RoutingProfile
from repro.gpu.energy import GPUEnergyModel, EnergyBreakdown

__all__ = [
    "GPU_DEVICES",
    "GPUDevice",
    "MemoryTechnology",
    "get_device",
    "GPUCostParameters",
    "KernelTiming",
    "StallBreakdown",
    "StallClass",
    "GPUSimulator",
    "InferenceTiming",
    "LayerTiming",
    "RoutingProfile",
    "GPUEnergyModel",
    "EnergyBreakdown",
]
