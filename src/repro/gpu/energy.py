"""GPU energy model.

Energy is accounted as the sum of:

* static energy -- the device's idle/leakage power drawn for the full
  duration of the phase being measured,
* dynamic compute energy -- an energy-per-FLOP cost scaled by how efficiently
  the phase uses the ALUs,
* DRAM energy -- an energy-per-byte cost of the off-chip traffic.

The defaults are derived from public energy-per-operation estimates for
14/16 nm GPUs (a few pJ per FP32 FLOP, tens of pJ per off-chip byte) and are
held constant across every design point so relative comparisons (Figs. 15
and 17) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gpu.devices import GPUDevice, baseline_device


@dataclass
class EnergyBreakdown:
    """Energy (joules) split into the model's three components."""

    static: float = 0.0
    compute: float = 0.0
    dram: float = 0.0

    @property
    def total(self) -> float:
        return self.static + self.compute + self.dram

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Component-wise sum."""
        return EnergyBreakdown(
            static=self.static + other.static,
            compute=self.compute + other.compute,
            dram=self.dram + other.dram,
        )

    def as_dict(self) -> Dict[str, float]:
        return {"static": self.static, "compute": self.compute, "dram": self.dram}


@dataclass(frozen=True)
class GPUEnergyModel:
    """Energy model of a GPU executing CapsNet phases.

    Attributes:
        device: the GPU whose static power is used.
        energy_per_flop: dynamic energy per FP32 operation (joules).
        energy_per_dram_byte: energy per byte moved to/from off-chip memory
            (joules); HBM-class memories sit around 10-20 pJ/byte once the
            PHY and controller are included.
        busy_power_fraction: fraction of (TDP - idle) drawn on top of the
            idle power while kernels are resident, covering clocks, fetch and
            scheduling logic that burns power regardless of useful work.
    """

    device: GPUDevice = None  # type: ignore[assignment]
    energy_per_flop: float = 6.0e-12
    energy_per_dram_byte: float = 15.0e-12
    busy_power_fraction: float = 0.30

    def __post_init__(self) -> None:
        if self.device is None:
            object.__setattr__(self, "device", baseline_device())
        if self.energy_per_flop < 0 or self.energy_per_dram_byte < 0:
            raise ValueError("energy coefficients must be non-negative")
        if not 0.0 <= self.busy_power_fraction <= 1.0:
            raise ValueError("busy_power_fraction must be in [0, 1]")

    @property
    def _background_power(self) -> float:
        """Power drawn while kernels run, independent of the work performed."""
        return self.device.idle_watts + self.busy_power_fraction * (
            self.device.tdp_watts - self.device.idle_watts
        )

    def phase_energy(self, duration_s: float, flops: float, dram_bytes: float) -> EnergyBreakdown:
        """Energy of one execution phase.

        Args:
            duration_s: wall-clock duration of the phase.
            flops: floating point operations executed.
            dram_bytes: off-chip bytes moved.
        """
        if duration_s < 0 or flops < 0 or dram_bytes < 0:
            raise ValueError("phase quantities must be non-negative")
        return EnergyBreakdown(
            static=self._background_power * duration_s,
            compute=self.energy_per_flop * flops,
            dram=self.energy_per_dram_byte * dram_bytes,
        )

    def idle_energy(self, duration_s: float) -> EnergyBreakdown:
        """Energy drawn while the GPU merely waits (e.g. for the HMC)."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return EnergyBreakdown(static=self.device.idle_watts * duration_s)
