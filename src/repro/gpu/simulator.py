"""GPU inference simulator for CapsNet workloads.

The simulator executes the analytic workload model
(:class:`repro.workloads.CapsNetWorkload`) on a :class:`repro.gpu.GPUDevice`
and produces per-layer timings plus a detailed profile of the routing
procedure.  It reproduces the characterization results of Sec. 3:

* Fig. 4  -- per-layer time breakdown and total inference time,
* Fig. 5  -- pipeline-stall breakdown of the routing procedure,
* Fig. 6b -- sensitivity of routing performance to on-chip storage,
* Fig. 7  -- sensitivity of routing performance to off-chip bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.devices import GPUDevice, baseline_device
from repro.gpu.kernels import GPUCostParameters, KernelTiming, StallBreakdown
from repro.workloads.layers_model import CapsNetWorkload, LayerKind, LayerWorkload
from repro.workloads.rp_model import RoutingWorkload

#: Fraction of the on-chip storage that kernels can realistically dedicate to
#: keeping routing intermediates resident (the rest holds code, indices,
#: per-thread state and double buffers).
ONCHIP_USABLE_FRACTION = 0.8


@dataclass
class LayerTiming:
    """Timing of one network stage on the GPU."""

    name: str
    kind: LayerKind
    timing: KernelTiming

    @property
    def total(self) -> float:
        return self.timing.total


@dataclass
class RoutingProfile:
    """Detailed execution profile of the routing procedure on the GPU.

    Attributes:
        timing: aggregated timing of the whole routing procedure.
        per_iteration: timing of a single routing iteration (Eqs. 2-5).
        prediction_timing: timing of Eq. 1 (executed once).
        offchip_traffic_bytes: total off-chip traffic of the procedure.
        resident_bytes: bytes of intermediates kept resident on-chip.
        stalls: pipeline-stall attribution (Fig. 5).
        alu_utilization: estimated ALU busy fraction.
        ldst_utilization: estimated load/store unit busy fraction.
    """

    timing: KernelTiming
    per_iteration: KernelTiming
    prediction_timing: KernelTiming
    offchip_traffic_bytes: int
    resident_bytes: int
    stalls: StallBreakdown
    alu_utilization: float
    ldst_utilization: float

    @property
    def total_time(self) -> float:
        return self.timing.total


@dataclass
class InferenceTiming:
    """End-to-end timing of one batched CapsNet inference on the GPU."""

    benchmark: str
    device: str
    layers: List[LayerTiming]
    routing_profile: RoutingProfile

    @property
    def total_time(self) -> float:
        """Total inference latency in seconds."""
        return sum(layer.total for layer in self.layers)

    def time_by_kind(self) -> Dict[LayerKind, float]:
        """Aggregate time per stage category (the Fig. 4 stacking)."""
        totals: Dict[LayerKind, float] = {kind: 0.0 for kind in LayerKind}
        for layer in self.layers:
            totals[layer.kind] += layer.total
        return totals

    def fraction_by_kind(self) -> Dict[LayerKind, float]:
        """Per-category share of the total inference time."""
        total = self.total_time
        if total <= 0:
            return {kind: 0.0 for kind in LayerKind}
        return {kind: value / total for kind, value in self.time_by_kind().items()}

    @property
    def routing_time(self) -> float:
        """Time spent in the routing procedure."""
        return self.time_by_kind()[LayerKind.ROUTING]

    @property
    def routing_fraction(self) -> float:
        """Share of inference time spent in the routing procedure."""
        return self.fraction_by_kind()[LayerKind.ROUTING]

    @property
    def host_time(self) -> float:
        """Time spent in the non-routing (Conv / PrimaryCaps / FC) stages."""
        return self.total_time - self.routing_time


class GPUSimulator:
    """Analytic GPU simulator for CapsNet inference.

    Args:
        device: GPU device model (defaults to the paper's P100 baseline).
        params: calibration constants of the cost model.
        ideal_cache: when True, models the "GPU-ICP" design point of Fig. 15
            (an ideal cache replacement policy): the small routing
            intermediates are always considered resident regardless of the
            physical on-chip capacity.  The dominant, non-shareable
            prediction vectors still spill, which is why GPU-ICP barely helps.
    """

    def __init__(
        self,
        device: Optional[GPUDevice] = None,
        params: Optional[GPUCostParameters] = None,
        ideal_cache: bool = False,
    ) -> None:
        self.device = device or baseline_device()
        self.params = params or GPUCostParameters()
        self.ideal_cache = ideal_cache

    # -- dense (Conv / PrimaryCaps / FC) stages --------------------------------

    def simulate_dense_layer(self, layer: LayerWorkload) -> KernelTiming:
        """Roofline-style timing of a dense (Conv / FC) stage."""
        params = self.params
        device = self.device
        compute = layer.flops / (device.peak_flops * params.dense_compute_efficiency)
        bandwidth = layer.traffic_bytes / (
            device.memory_bandwidth_bytes * params.dense_bandwidth_utilization
        )
        # Dense kernels overlap memory with compute well: only the part of the
        # memory time exceeding the compute time is exposed.
        exposed_bandwidth = max(0.0, bandwidth - compute)
        overhead = params.kernel_launch_seconds
        return KernelTiming(
            name=layer.name,
            compute=compute,
            bandwidth=exposed_bandwidth,
            latency=0.0,
            sync=0.0,
            overhead=overhead,
        )

    # -- routing procedure -------------------------------------------------------

    def _resident_operands(self, workload: RoutingWorkload) -> Dict[str, int]:
        """Routing intermediates that stay resident on-chip (name -> bytes).

        Operands are considered in increasing size order; an operand stays
        resident if it fits in the remaining usable on-chip capacity.  The
        prediction vectors u_hat practically never fit, which is the paper's
        core observation.
        """
        footprint = workload.footprint()
        capacity = int(self.device.onchip_storage_bytes * ONCHIP_USABLE_FRACTION)
        if self.ideal_cache:
            # Ideal replacement keeps every *small* intermediate resident but
            # cannot make the capacity larger than it is.
            capacity = max(capacity, footprint.intermediate_bytes - footprint.predictions)
        operands = {
            "b": footprint.logits,
            "c": footprint.coefficients,
            "s": footprint.weighted_sums,
            "v": footprint.high_capsules,
            "u_hat": footprint.predictions,
        }
        resident: Dict[str, int] = {}
        budget = capacity
        for name, size in sorted(operands.items(), key=lambda item: item[1]):
            if size <= budget:
                resident[name] = size
                budget -= size
        return resident

    def simulate_routing(self, workload: RoutingWorkload) -> RoutingProfile:
        """Detailed timing and profiling of the routing procedure."""
        params = self.params
        device = self.device
        footprint = workload.footprint()
        resident_operands = self._resident_operands(workload)
        resident = sum(resident_operands.values())

        # On-chip capacity left after pinning the small intermediates can hold
        # a *tile* of the prediction vectors, so a fraction of every u_hat
        # re-read hits on-chip.  This is the (limited) benefit larger on-chip
        # storage provides in Fig. 6(b): u_hat is 40x-300x larger than any
        # GPU's storage, so the fraction stays small.
        capacity = int(self.device.onchip_storage_bytes * ONCHIP_USABLE_FRACTION)
        spare_capacity = max(0, capacity - resident)
        uhat_hit_fraction = 0.0
        if "u_hat" not in resident_operands and footprint.predictions > 0:
            uhat_hit_fraction = min(1.0, spare_capacity / float(footprint.predictions))

        def offchip(name: str, size: int) -> float:
            """Traffic contributed by one operand access, 0 if it is resident."""
            if name in resident_operands:
                return 0.0
            if name == "u_hat":
                return size * (1.0 - uhat_hit_fraction)
            return float(size)

        # ---- Eq. 1 (prediction vectors), executed once.
        eq1_traffic = footprint.low_capsules + footprint.weights + footprint.predictions
        eq1_flops = workload.flops_prediction()

        # ---- one routing iteration (Eqs. 2-5).
        iter_traffic = 0
        # Eq. 5: read b, write c.
        iter_traffic += offchip("b", footprint.logits)
        iter_traffic += offchip("c", footprint.coefficients)
        # Eq. 2: read u_hat + c, write s.
        iter_traffic += offchip("u_hat", footprint.predictions)
        iter_traffic += offchip("c", footprint.coefficients)
        iter_traffic += offchip("s", footprint.weighted_sums)
        # Eq. 3: read s, write v.
        iter_traffic += offchip("s", footprint.weighted_sums)
        iter_traffic += offchip("v", footprint.high_capsules)
        # Eq. 4: read u_hat + v + b, write b.
        iter_traffic += offchip("u_hat", footprint.predictions)
        iter_traffic += offchip("v", footprint.high_capsules)
        iter_traffic += 2 * offchip("b", footprint.logits)
        iter_flops = workload.iteration_flops()

        iterations = workload.iterations
        total_traffic = eq1_traffic + iterations * iter_traffic

        routing_bw = device.memory_bandwidth_bytes * params.routing_bandwidth_utilization

        def timing_for(name: str, flops: int, traffic: int, barriers: int, kernels: int) -> KernelTiming:
            compute_full = flops / (device.peak_flops * params.routing_alu_efficiency)
            bandwidth = traffic / routing_bw
            latency = traffic * params.routing_latency_seconds_per_byte
            memory = bandwidth + latency
            exposed_compute = max(0.0, compute_full - memory)
            sync = barriers * params.barrier_cost_seconds
            busy = memory + sync + exposed_compute
            overhead = busy * (
                params.resource_stall_fraction
                + params.fetch_stall_fraction
                + params.other_stall_fraction
            ) + kernels * params.kernel_launch_seconds
            return KernelTiming(
                name=name,
                compute=exposed_compute,
                bandwidth=bandwidth,
                latency=latency,
                sync=sync,
                overhead=overhead,
            )

        barriers_per_iter = workload.total_synchronization_groups() // iterations
        prediction_timing = timing_for(
            "routing-eq1", eq1_flops, eq1_traffic, barriers=0, kernels=1
        )
        per_iteration = timing_for(
            "routing-iteration",
            iter_flops,
            iter_traffic,
            barriers=barriers_per_iter,
            kernels=params.routing_kernels_per_iteration,
        )
        total = prediction_timing.merged_with(per_iteration.scaled(iterations), name="routing")

        # Utilization estimates in the spirit of the NVprofiler counters the
        # paper reports (ALU ~38.6%, LDST ~85.9%): the load/store units are
        # busy during the memory phases and the shared-memory traffic of the
        # synchronization phases; the ALUs are only busy for the arithmetic.
        total_time = total.total
        compute_full_total = (
            eq1_flops + iterations * iter_flops
        ) / (device.peak_flops * params.routing_alu_efficiency)
        alu_util = min(1.0, compute_full_total / total_time) if total_time > 0 else 0.0
        ldst_util = (
            min(1.0, (total.memory + total.sync + 0.5 * total.overhead) / total_time)
            if total_time > 0
            else 0.0
        )

        return RoutingProfile(
            timing=total,
            per_iteration=per_iteration,
            prediction_timing=prediction_timing,
            offchip_traffic_bytes=int(total_traffic),
            resident_bytes=resident,
            stalls=StallBreakdown.from_timing(total, params),
            alu_utilization=alu_util,
            ldst_utilization=ldst_util,
        )

    # -- whole network -------------------------------------------------------------

    def simulate(self, workload: CapsNetWorkload) -> InferenceTiming:
        """Simulate one batched inference of the full CapsNet."""
        layers: List[LayerTiming] = []
        routing_profile: Optional[RoutingProfile] = None
        for layer in workload.layers():
            if layer.kind is LayerKind.ROUTING:
                routing_profile = self.simulate_routing(workload.routing)
                layers.append(LayerTiming(layer.name, layer.kind, routing_profile.timing))
            else:
                layers.append(LayerTiming(layer.name, layer.kind, self.simulate_dense_layer(layer)))
        assert routing_profile is not None
        return InferenceTiming(
            benchmark=workload.config.name,
            device=self.device.name,
            layers=layers,
            routing_profile=routing_profile,
        )

    def routing_time(self, workload: CapsNetWorkload) -> float:
        """Convenience: routing-procedure time only."""
        return self.simulate_routing(workload.routing).total_time
