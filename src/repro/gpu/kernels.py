"""Per-kernel GPU cost model and stall attribution.

The model decomposes each kernel (or kernel group) into five time components:

* ``compute``    -- FLOPs / (peak throughput x achieved ALU efficiency),
* ``bandwidth``  -- off-chip traffic / (peak bandwidth x achieved utilization);
  this is the only component that scales with the memory technology sweeps of
  Fig. 7,
* ``latency``    -- a traffic-proportional cost that models latency-bound /
  poorly-coalesced accesses which higher bandwidth does *not* remove,
* ``sync``       -- barrier synchronizations (``__syncthreads``) required by
  the aggregation operations of the routing procedure,
* ``overhead``   -- kernel-launch, instruction-fetch and occupancy-limit
  ("lack of resource") overheads.

The components that stall the pipeline (everything except useful compute
overlap) are attributed to the stall classes reported by NVprofiler, which is
how Fig. 5's breakdown is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class StallClass(str, Enum):
    """Pipeline stall categories reported in Fig. 5."""

    MEMORY_ACCESS = "memory_access"
    SYNCHRONIZATION = "synchronization"
    LACK_OF_RESOURCE = "lack_of_resource"
    INSTRUCTION_FETCH = "inst_fetch"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GPUCostParameters:
    """Calibration constants of the GPU cost model.

    The defaults are chosen so the characterization figures of the paper are
    reproduced for the P100 baseline (see EXPERIMENTS.md):

    Attributes:
        dense_compute_efficiency: fraction of peak FLOP/s achieved by
            cuDNN-style dense kernels (Conv / FC).
        dense_bandwidth_utilization: fraction of peak bandwidth achieved by
            dense kernels.
        routing_alu_efficiency: fraction of peak FLOP/s achieved during the
            routing procedure (the paper profiles ~38.6% ALU utilization).
        routing_bandwidth_utilization: fraction of peak bandwidth achieved by
            the routing procedure's scattered accesses.
        routing_latency_seconds_per_byte: latency-bound memory cost per byte
            of routing traffic (does not improve with higher bandwidth).
        barrier_cost_seconds: cost of one barrier-synchronized partial
            reduction group (a warp-sized group of values synchronizing
            through shared memory).
        kernel_launch_seconds: fixed cost per kernel launch.
        resource_stall_fraction: occupancy-limit stalls as a fraction of the
            busy (compute + memory + sync) time.
        fetch_stall_fraction: instruction-fetch stalls as a fraction of busy time.
        other_stall_fraction: unclassified stalls as a fraction of busy time.
        routing_kernels_per_iteration: number of kernel launches per routing
            iteration (one or more per equation).
    """

    dense_compute_efficiency: float = 0.62
    dense_bandwidth_utilization: float = 0.70
    routing_alu_efficiency: float = 0.386
    routing_bandwidth_utilization: float = 0.30
    routing_latency_seconds_per_byte: float = 8.5e-12
    barrier_cost_seconds: float = 2.8e-8
    kernel_launch_seconds: float = 8.0e-6
    resource_stall_fraction: float = 0.115
    fetch_stall_fraction: float = 0.045
    other_stall_fraction: float = 0.045
    routing_kernels_per_iteration: int = 6

    def __post_init__(self) -> None:
        for name in (
            "dense_compute_efficiency",
            "dense_bandwidth_utilization",
            "routing_alu_efficiency",
            "routing_bandwidth_utilization",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in (
            "routing_latency_seconds_per_byte",
            "barrier_cost_seconds",
            "kernel_launch_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class KernelTiming:
    """Timing decomposition of one kernel (or fused kernel group).

    All values are seconds.
    """

    name: str
    compute: float = 0.0
    bandwidth: float = 0.0
    latency: float = 0.0
    sync: float = 0.0
    overhead: float = 0.0

    @property
    def memory(self) -> float:
        """Total memory-induced time (bandwidth + latency bound)."""
        return self.bandwidth + self.latency

    @property
    def total(self) -> float:
        """Total kernel time."""
        return self.compute + self.bandwidth + self.latency + self.sync + self.overhead

    def scaled(self, factor: float) -> "KernelTiming":
        """Return a copy with every component scaled by ``factor``."""
        return KernelTiming(
            name=self.name,
            compute=self.compute * factor,
            bandwidth=self.bandwidth * factor,
            latency=self.latency * factor,
            sync=self.sync * factor,
            overhead=self.overhead * factor,
        )

    def merged_with(self, other: "KernelTiming", name: str | None = None) -> "KernelTiming":
        """Component-wise sum of two timings."""
        return KernelTiming(
            name=name or self.name,
            compute=self.compute + other.compute,
            bandwidth=self.bandwidth + other.bandwidth,
            latency=self.latency + other.latency,
            sync=self.sync + other.sync,
            overhead=self.overhead + other.overhead,
        )


@dataclass
class StallBreakdown:
    """Fractions of pipeline stall cycles attributed to each stall class."""

    fractions: Dict[StallClass, float] = field(default_factory=dict)

    @staticmethod
    def from_timing(timing: KernelTiming, params: GPUCostParameters) -> "StallBreakdown":
        """Attribute a kernel's non-compute time to NVprofiler stall classes.

        Memory stalls come from the bandwidth and latency components, barrier
        stalls from the sync component, and the overhead component is split
        between lack-of-resource, instruction-fetch and other according to
        the calibration fractions.
        """
        overhead_split = (
            params.resource_stall_fraction
            + params.fetch_stall_fraction
            + params.other_stall_fraction
        )
        if overhead_split <= 0:
            resource = fetch = other = timing.overhead / 3.0
        else:
            resource = timing.overhead * params.resource_stall_fraction / overhead_split
            fetch = timing.overhead * params.fetch_stall_fraction / overhead_split
            other = timing.overhead * params.other_stall_fraction / overhead_split
        stalls = {
            StallClass.MEMORY_ACCESS: timing.memory,
            StallClass.SYNCHRONIZATION: timing.sync,
            StallClass.LACK_OF_RESOURCE: resource,
            StallClass.INSTRUCTION_FETCH: fetch,
            StallClass.OTHER: other,
        }
        total = sum(stalls.values())
        if total <= 0:
            return StallBreakdown({cls: 0.0 for cls in StallClass})
        return StallBreakdown({cls: value / total for cls, value in stalls.items()})

    def fraction(self, stall_class: StallClass) -> float:
        """Fraction of stall cycles caused by ``stall_class``."""
        return self.fractions.get(stall_class, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Plain-string keyed dictionary (for reports)."""
        return {cls.value: self.fraction(cls) for cls in StallClass}
