"""Catalog of the GPU devices referenced by the paper.

The paper's characterization uses several NVIDIA GPUs:

* Fig. 6 compares on-chip storage sizes: K40m (1.73 MB), Tesla P100
  (5.31 MB), RTX 2080Ti (9.75 MB) and Tesla V100 (16 MB).
* Fig. 7 compares memory technologies: GDDR5 288 GB/s (K40m), GDDR5X
  484 GB/s (GTX 1080Ti), GDDR6 616 GB/s (RTX 2080Ti) and HBM2 897 GB/s
  (Tesla V100).
* Table 4 defines the host processor of PIM-CapsNet: a P100-class GPU with
  3584 shading units at 1190 MHz, 24 KB L1/shared x 56 SMs + 4 MB L2 and an
  8 GB, 320 GB/s HBM memory.

On-chip storage numbers follow the paper's figure captions rather than the
vendor datasheets so the reproduced ratios line up with Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List


class MemoryTechnology(str, Enum):
    """Off-chip memory technology of a GPU board."""

    GDDR5 = "GDDR5"
    GDDR5X = "GDDR5X"
    GDDR6 = "GDDR6"
    HBM = "HBM"
    HBM2 = "HBM2"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GPUDevice:
    """Architectural parameters of one GPU.

    Attributes:
        name: marketing name.
        shading_units: number of FP32 CUDA cores.
        core_clock_mhz: sustained core clock in MHz.
        onchip_storage_bytes: total on-chip storage (registers/L1/shared/L2)
            as counted by the paper's Fig. 6.
        memory_technology: off-chip memory technology.
        memory_bandwidth_gbs: off-chip memory bandwidth in GB/s.
        memory_capacity_gb: off-chip memory capacity in GB.
        tdp_watts: board thermal design power.
        idle_watts: static/idle power draw while executing (leakage + fans +
            non-compute logic), used by the energy model.
    """

    name: str
    shading_units: int
    core_clock_mhz: float
    onchip_storage_bytes: int
    memory_technology: MemoryTechnology
    memory_bandwidth_gbs: float
    memory_capacity_gb: float
    tdp_watts: float
    idle_watts: float

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (2 FLOPs per core per cycle)."""
        return 2.0 * self.shading_units * self.core_clock_mhz * 1e6

    @property
    def memory_bandwidth_bytes(self) -> float:
        """Off-chip bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1e9

    def with_memory_bandwidth(self, bandwidth_gbs: float) -> "GPUDevice":
        """Return a copy with a different off-chip bandwidth (Fig. 7 sweeps)."""
        if bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        return replace(self, memory_bandwidth_gbs=bandwidth_gbs)

    def with_onchip_storage(self, storage_bytes: int) -> "GPUDevice":
        """Return a copy with a different on-chip storage size (Fig. 6b sweeps)."""
        if storage_bytes <= 0:
            raise ValueError("storage must be positive")
        return replace(self, onchip_storage_bytes=storage_bytes)


def _mb(value: float) -> int:
    return int(value * 1024 * 1024)


#: GPUs referenced across the paper's characterization figures.
GPU_DEVICES: Dict[str, GPUDevice] = {
    "K40m": GPUDevice(
        name="K40m",
        shading_units=2880,
        core_clock_mhz=745.0,
        onchip_storage_bytes=_mb(1.73),
        memory_technology=MemoryTechnology.GDDR5,
        memory_bandwidth_gbs=288.0,
        memory_capacity_gb=12.0,
        tdp_watts=235.0,
        idle_watts=60.0,
    ),
    "GTX1080Ti": GPUDevice(
        name="GTX1080Ti",
        shading_units=3584,
        core_clock_mhz=1480.0,
        onchip_storage_bytes=_mb(5.0),
        memory_technology=MemoryTechnology.GDDR5X,
        memory_bandwidth_gbs=484.0,
        memory_capacity_gb=11.0,
        tdp_watts=250.0,
        idle_watts=55.0,
    ),
    "P100": GPUDevice(
        name="P100",
        shading_units=3584,
        core_clock_mhz=1190.0,
        onchip_storage_bytes=_mb(5.31),
        memory_technology=MemoryTechnology.HBM,
        memory_bandwidth_gbs=320.0,
        memory_capacity_gb=8.0,
        tdp_watts=250.0,
        idle_watts=60.0,
    ),
    "RTX2080Ti": GPUDevice(
        name="RTX2080Ti",
        shading_units=4352,
        core_clock_mhz=1545.0,
        onchip_storage_bytes=_mb(9.75),
        memory_technology=MemoryTechnology.GDDR6,
        memory_bandwidth_gbs=616.0,
        memory_capacity_gb=11.0,
        tdp_watts=250.0,
        idle_watts=55.0,
    ),
    "V100": GPUDevice(
        name="V100",
        shading_units=5120,
        core_clock_mhz=1380.0,
        onchip_storage_bytes=_mb(16.0),
        memory_technology=MemoryTechnology.HBM2,
        memory_bandwidth_gbs=897.0,
        memory_capacity_gb=16.0,
        tdp_watts=300.0,
        idle_watts=65.0,
    ),
}

#: Device order used by Fig. 6 (increasing on-chip storage).
ONCHIP_STORAGE_SWEEP: List[str] = ["K40m", "P100", "RTX2080Ti", "V100"]

#: Device order used by Fig. 7 (increasing memory bandwidth).
BANDWIDTH_SWEEP: List[str] = ["K40m", "GTX1080Ti", "RTX2080Ti", "V100"]


def get_device(name: str) -> GPUDevice:
    """Look up a device by (case-insensitive) name."""
    for key, device in GPU_DEVICES.items():
        if key.lower() == name.strip().lower():
            return device
    raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPU_DEVICES)}")


def baseline_device() -> GPUDevice:
    """The paper's baseline host GPU (Table 4: P100-class with 320 GB/s HBM)."""
    return GPU_DEVICES["P100"]
