"""PIM-CapsNet reproduction library.

A from-scratch Python reproduction of *"Enabling Highly Efficient Capsule
Networks Processing Through A PIM-Based Architecture Design"* (HPCA 2020):

* :mod:`repro.capsnet`    -- functional CapsNet model (numpy) with dynamic /
  EM routing, training and synthetic datasets.
* :mod:`repro.arithmetic` -- the PE's bit-level approximate arithmetic and
  accuracy recovery.
* :mod:`repro.workloads`  -- analytic op / traffic models of the Table-1
  benchmarks, plus declarative :class:`WorkloadSpec` definitions and the
  :class:`WorkloadCatalog` resolving user-defined capsule networks.
* :mod:`repro.gpu`        -- GPU timing & energy model (baseline / host).
* :mod:`repro.hmc`        -- Hybrid Memory Cube simulator (vaults, banks,
  crossbar, PEs, power, thermal).
* :mod:`repro.core`       -- the PIM-CapsNet accelerator: inter-/intra-vault
  workload distribution, RMAS, pipelining and design-point comparisons.
* :mod:`repro.engine`     -- the experiment engine: pluggable design-point
  strategies, the memoizing simulation context and the concurrent runner.
* :mod:`repro.experiments`-- drivers reproducing every evaluation figure and
  table of the paper.
* :mod:`repro.api`        -- the stable public API: typed hardware
  :class:`~repro.api.Scenario` configurations (carrying workload catalogs),
  the :class:`~repro.api.Session` facade and
  :func:`~repro.api.compare_scenarios`.
"""

from repro.api import (
    ObjectiveSpec,
    Scenario,
    Session,
    SweepSpec,
    compare_scenarios,
    run_optimize,
    run_sweep,
)
from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.workloads.benchmarks import BENCHMARKS, BenchmarkConfig, get_benchmark
from repro.workloads.catalog import (
    RoutingAlgorithm,
    WorkloadCatalog,
    WorkloadSpec,
    default_catalog,
)

__version__ = "0.10.0"

__all__ = [
    "ObjectiveSpec",
    "Scenario",
    "Session",
    "SweepSpec",
    "compare_scenarios",
    "run_optimize",
    "run_sweep",
    "DesignPoint",
    "PIMCapsNet",
    "BENCHMARKS",
    "BenchmarkConfig",
    "get_benchmark",
    "RoutingAlgorithm",
    "WorkloadCatalog",
    "WorkloadSpec",
    "default_catalog",
    "__version__",
]
