"""Bit-level approximations of the routing procedure's special functions.

The dynamic routing procedure needs three functions that are expensive to
implement as dedicated logic on the HMC logic layer:

* the exponential function (``softmax`` in Eq. 5),
* division (``softmax`` normalization and the ``squash`` in Eq. 3),
* the inverse square root (``squash`` needs ``s / ||s||``).

Section 5.2.2 of the paper replaces them with adder/multiplier/bit-shifter
sequences.  This module provides faithful, vectorized software models of
those datapaths:

* :func:`approx_exp` implements Eq. (13)/(14): ``e^x = 2^(x*log2 e)`` is
  evaluated by building the FP32 bit pattern directly from the fixed point
  value ``log2(e)*x + Avg + bias - 1`` (the well known Schraudolph
  construction, which is exactly the exponent/fraction-field transfer the
  paper describes in Fig. 12).
* :func:`approx_inv_sqrt` implements the classic bit-shift inverse square
  root (Lomont / Quake III) with a configurable number of Newton-Raphson
  refinement steps (each step only needs multiplies and adds, i.e. MAC
  operations the PE already supports).
* :func:`approx_reciprocal` / :func:`approx_div` implement division through
  an exponent-negation bit trick plus Newton refinement.

All functions accept scalars or numpy arrays and always compute in FP32, the
format the paper targets.
"""

from __future__ import annotations

import numpy as np

from repro.arithmetic.fp32 import as_f32, FP32_BIAS, FP32_FRACTION_BITS, bits_to_float, float_to_bits

#: ``log2(e)`` pre-computed offline (Sec. 5.2.2: "a constant that is computed offline").
LOG2_E = float(np.log2(np.e))

#: Average value of ``2^f - f`` for ``f`` uniform in [0, 1), minus 1.
#: The paper derives it by integrating the polynomial over [0, 1):
#: ``integral(2^f) = 1/ln 2`` and ``integral(f) = 1/2`` so
#: ``Avg = 1/ln2 - 1/2 - 1``.
EXP_AVG_CORRECTION = float(1.0 / np.log(2.0) - 0.5 - 1.0)

#: Magic constant of the fast inverse square root (Lomont's analysis).
INV_SQRT_MAGIC = np.uint32(0x5F3759DF)

#: Magic constant for the reciprocal approximation (exponent negation).
RECIPROCAL_MAGIC = np.uint32(0x7EF311C3)

_EXP_MIN_INPUT = -80.0
_EXP_MAX_INPUT = 80.0


def _as_fp32(x: np.ndarray | float) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


# ---------------------------------------------------------------------------
# Exact reference implementations (what the GPU / FP32 FPU would compute).
# ---------------------------------------------------------------------------


def exact_exp(x: np.ndarray | float) -> np.ndarray:
    """Reference exponential, computed in FP32 like a GPU special function unit."""
    return np.exp(_as_fp32(x), dtype=np.float32)


def exact_inv_sqrt(x: np.ndarray | float) -> np.ndarray:
    """Reference inverse square root in FP32."""
    return as_f32(np.float32(1.0) / np.sqrt(_as_fp32(x), dtype=np.float32))


def exact_reciprocal(x: np.ndarray | float) -> np.ndarray:
    """Reference reciprocal in FP32."""
    return as_f32(np.float32(1.0) / _as_fp32(x))


# ---------------------------------------------------------------------------
# PE datapath approximations.
# ---------------------------------------------------------------------------


def approx_exp(x: np.ndarray | float, correction: float = EXP_AVG_CORRECTION) -> np.ndarray:
    """Approximate ``e^x`` with the PE's add + bit-shift datapath (Eq. 14).

    The computation is ``BS(log2(e) * x + Avg + bias - 1)`` where ``BS``
    denotes placing the fixed point result into the exponent/fraction fields
    of an FP32 word -- equivalently multiplying by ``2^23`` and
    reinterpreting the integer as a float.

    Args:
        x: input value(s).
        correction: the ``Avg`` term; exposed so the calibration code and the
            test-suite can explore its effect.  Defaults to the paper's
            offline-integrated value.

    Returns:
        FP32 approximation of ``exp(x)``.
    """
    x = np.clip(_as_fp32(x), _EXP_MIN_INPUT, _EXP_MAX_INPUT)
    y = np.float64(LOG2_E) * x.astype(np.float64)
    # Fixed point value destined for the exponent/fraction fields.
    fixed = (y + (FP32_BIAS - 1) + 1.0 + correction) * (1 << FP32_FRACTION_BITS)
    fixed = np.clip(fixed, 1.0, np.float64(0x7F7FFFFF))
    bits = fixed.astype(np.uint32)
    return as_f32(bits_to_float(bits))


def approx_inv_sqrt(x: np.ndarray | float, newton_steps: int = 1) -> np.ndarray:
    """Approximate ``1/sqrt(x)`` with the bit-shift trick plus Newton steps.

    Args:
        x: strictly positive input value(s).
        newton_steps: number of Newton-Raphson refinements.  Each step uses
            only multiply/add operations, matching the PE flow
            ``3 -> 2 -> 1 -> 2 -> 1`` described in the paper.

    Returns:
        FP32 approximation of ``1/sqrt(x)``.
    """
    x = _as_fp32(x)
    half = np.float32(0.5) * x
    bits = float_to_bits(x)
    bits = INV_SQRT_MAGIC - (bits >> np.uint32(1))
    y = as_f32(bits_to_float(bits))
    for _ in range(max(0, int(newton_steps))):
        y = y * (np.float32(1.5) - half * y * y)
    return as_f32(y)


def approx_reciprocal(x: np.ndarray | float, newton_steps: int = 1) -> np.ndarray:
    """Approximate ``1/x`` for positive ``x`` via exponent negation + Newton.

    The initial guess is obtained by subtracting the operand's bit pattern
    from a magic constant (a pure integer subtraction, i.e. realizable with
    the PE adder operating on the raw FP32 word), then refined with
    ``y <- y * (2 - x*y)`` Newton steps that use only MACs.
    """
    x = _as_fp32(x)
    sign = np.signbit(x)
    mag = np.abs(x)
    bits = float_to_bits(mag)
    bits = RECIPROCAL_MAGIC - bits
    y = as_f32(bits_to_float(bits))
    for _ in range(max(0, int(newton_steps))):
        y = y * (np.float32(2.0) - mag * y)
    y = np.where(sign, -y, y)
    return as_f32(y)


def approx_div(
    numerator: np.ndarray | float,
    denominator: np.ndarray | float,
    newton_steps: int = 1,
) -> np.ndarray:
    """Approximate ``numerator / denominator`` using :func:`approx_reciprocal`."""
    num = _as_fp32(numerator)
    return as_f32(num * approx_reciprocal(denominator, newton_steps=newton_steps))


def approx_softmax(logits: np.ndarray, axis: int = -1, newton_steps: int = 1) -> np.ndarray:
    """Softmax evaluated entirely with the PE approximations.

    The max-subtraction trick is kept (it only needs compares and adds) so
    the approximation remains well conditioned for large routing logits.
    """
    logits = _as_fp32(logits)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = approx_exp(shifted)
    total = np.sum(exp, axis=axis, keepdims=True, dtype=np.float32)
    return as_f32(exp * approx_reciprocal(total, newton_steps=newton_steps))


def approx_squash(vectors: np.ndarray, axis: int = -1, newton_steps: int = 1) -> np.ndarray:
    """Squash non-linearity (Eq. 3) using approximate reciprocal / inv-sqrt.

    ``v = ||s||^2 / (1 + ||s||^2) * s / ||s||``.
    """
    vectors = _as_fp32(vectors)
    norm_sq = np.sum(vectors * vectors, axis=axis, keepdims=True, dtype=np.float32)
    norm_sq = np.maximum(norm_sq, np.float32(1e-12))
    inv_norm = approx_inv_sqrt(norm_sq, newton_steps=newton_steps)
    scale = norm_sq * approx_reciprocal(np.float32(1.0) + norm_sq, newton_steps=newton_steps)
    return as_f32(vectors * scale * inv_norm)
