"""Math context abstracting exact vs. PE-approximate arithmetic.

The functional CapsNet model evaluates the routing procedure through a
:class:`MathContext`.  Three contexts matter for the paper's experiments:

* ``MathContext.exact()``            -- FP32 reference arithmetic (the GPU baseline).
* ``MathContext.approximate()``      -- the PE approximations *without* accuracy
  recovery (Table 5, middle rows).
* ``MathContext.approximate_with_recovery()`` -- the PE approximations *with*
  the calibrated recovery multiplier (Table 5, bottom rows).

Keeping this a small strategy object keeps the layer / routing code free of
any knowledge about which hardware it is being evaluated for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arithmetic import approx
from repro.arithmetic.fp32 import as_f32
from repro.arithmetic.recovery import AccuracyRecovery, calibrate_exp_recovery


@dataclass(frozen=True)
class MathContext:
    """Bundle of the special-function implementations used by routing.

    Attributes:
        use_approximations: when False all functions fall back to exact FP32.
        newton_steps: Newton refinement steps used by the reciprocal and
            inverse-square-root datapaths.
        exp_recovery: optional accuracy-recovery correction for the
            exponential approximation.
        name: human readable label used in reports.
    """

    use_approximations: bool = False
    newton_steps: int = 1
    exp_recovery: Optional[AccuracyRecovery] = None
    name: str = "exact"

    # -- constructors -------------------------------------------------------

    @staticmethod
    def exact() -> "MathContext":
        """FP32 reference arithmetic (GPU baseline)."""
        return MathContext(use_approximations=False, name="exact")

    @staticmethod
    def approximate(newton_steps: int = 1) -> "MathContext":
        """PE approximations without accuracy recovery."""
        return MathContext(
            use_approximations=True,
            newton_steps=newton_steps,
            exp_recovery=None,
            name="approx",
        )

    @staticmethod
    def approximate_with_recovery(
        newton_steps: int = 1,
        calibration_samples: int = 10_000,
        seed: int = 2020,
    ) -> "MathContext":
        """PE approximations with the offline-calibrated recovery multiplier."""
        recovery = calibrate_exp_recovery(num_samples=calibration_samples, seed=seed)
        return MathContext(
            use_approximations=True,
            newton_steps=newton_steps,
            exp_recovery=recovery,
            name="approx+recovery",
        )

    # -- special functions ---------------------------------------------------

    def exp(self, x: np.ndarray) -> np.ndarray:
        """Exponential function (Eq. 5 softmax numerator)."""
        if not self.use_approximations:
            return approx.exact_exp(x)
        result = approx.approx_exp(x)
        if self.exp_recovery is not None:
            result = self.exp_recovery.apply(result)
        return result

    def reciprocal(self, x: np.ndarray) -> np.ndarray:
        """Reciprocal ``1/x``."""
        if not self.use_approximations:
            return approx.exact_reciprocal(x)
        return approx.approx_reciprocal(x, newton_steps=self.newton_steps)

    def divide(self, numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
        """Division ``numerator / denominator``."""
        if not self.use_approximations:
            return as_f32(
                np.asarray(numerator, dtype=np.float32)
                / np.asarray(denominator, dtype=np.float32)
            )
        return approx.approx_div(numerator, denominator, newton_steps=self.newton_steps)

    def inv_sqrt(self, x: np.ndarray) -> np.ndarray:
        """Inverse square root ``1/sqrt(x)``."""
        if not self.use_approximations:
            return approx.exact_inv_sqrt(x)
        return approx.approx_inv_sqrt(x, newton_steps=self.newton_steps)

    # -- composite routing functions -----------------------------------------

    def softmax(self, logits: np.ndarray, axis: int = -1) -> np.ndarray:
        """Numerically stable softmax along ``axis`` (Eq. 5)."""
        logits = np.asarray(logits, dtype=np.float32)
        shifted = logits - np.max(logits, axis=axis, keepdims=True)
        exp = self.exp(shifted)
        total = np.sum(exp, axis=axis, keepdims=True, dtype=np.float32)
        return as_f32(exp * self.reciprocal(total))

    def squash(self, vectors: np.ndarray, axis: int = -1) -> np.ndarray:
        """Squash non-linearity (Eq. 3) along ``axis``."""
        vectors = np.asarray(vectors, dtype=np.float32)
        norm_sq = np.sum(vectors * vectors, axis=axis, keepdims=True, dtype=np.float32)
        norm_sq = np.maximum(norm_sq, np.float32(1e-12))
        inv_norm = self.inv_sqrt(norm_sq)
        scale = norm_sq * self.reciprocal(np.float32(1.0) + norm_sq)
        return as_f32(vectors * scale * inv_norm)


#: Convenience module-level instances.
EXACT = MathContext.exact()
APPROXIMATE = MathContext.approximate()
