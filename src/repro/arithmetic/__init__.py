"""Approximate arithmetic used by the PIM-CapsNet processing elements.

The HMC logic-layer PEs proposed by the paper (Sec. 5.2.2) only contain
adders, multipliers, bit shifters and multiplexers.  The "special" functions
required by the routing procedure -- division, inverse square root and the
exponential function -- are therefore evaluated through bit-level
approximations on the IEEE-754 single precision format, optionally followed
by an *accuracy recovery* multiplier calibrated offline.

This package implements those approximations faithfully at the bit level so
that the functional CapsNet model (:mod:`repro.capsnet`) can be evaluated
with exactly the arithmetic a PIM-CapsNet deployment would use, which is how
Table 5 of the paper (accuracy with/without recovery) is reproduced.
"""

from repro.arithmetic.fp32 import (
    FP32_BIAS,
    FP32_EXPONENT_BITS,
    FP32_FRACTION_BITS,
    FloatFields,
    bits_to_float,
    compose,
    decompose,
    float_to_bits,
)
from repro.arithmetic.approx import (
    approx_div,
    approx_exp,
    approx_inv_sqrt,
    approx_reciprocal,
    exact_exp,
    exact_inv_sqrt,
    exact_reciprocal,
)
from repro.arithmetic.recovery import AccuracyRecovery, calibrate_exp_recovery
from repro.arithmetic.context import MathContext

__all__ = [
    "FP32_BIAS",
    "FP32_EXPONENT_BITS",
    "FP32_FRACTION_BITS",
    "FloatFields",
    "bits_to_float",
    "compose",
    "decompose",
    "float_to_bits",
    "approx_div",
    "approx_exp",
    "approx_inv_sqrt",
    "approx_reciprocal",
    "exact_exp",
    "exact_inv_sqrt",
    "exact_reciprocal",
    "AccuracyRecovery",
    "calibrate_exp_recovery",
    "MathContext",
]
