"""IEEE-754 single precision (FP32) bit-level utilities.

The PIM-CapsNet PE approximations (Sec. 5.2.2, Fig. 12 of the paper) operate
directly on the sign / exponent / fraction fields of FP32 numbers: the
exponential function is evaluated by *constructing* a floating point bit
pattern whose exponent and fraction fields are filled by shifted versions of
an intermediate fixed point value, and the inverse square root / reciprocal
approximations manipulate the exponent field through integer arithmetic.

Everything in this module is vectorized over numpy arrays and is careful to
use explicit 32-bit types so the bit patterns match what a hardware
implementation would see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of bits in the FP32 exponent field.
FP32_EXPONENT_BITS = 8
#: Number of bits in the FP32 fraction (mantissa) field.
FP32_FRACTION_BITS = 23
#: Exponent bias of the FP32 format.
FP32_BIAS = 127
#: Mask selecting the fraction field.
FP32_FRACTION_MASK = np.uint32((1 << FP32_FRACTION_BITS) - 1)
#: Mask selecting the (biased) exponent field, already shifted into place.
FP32_EXPONENT_MASK = np.uint32(((1 << FP32_EXPONENT_BITS) - 1) << FP32_FRACTION_BITS)
#: Mask selecting the sign bit.
FP32_SIGN_MASK = np.uint32(1 << (FP32_EXPONENT_BITS + FP32_FRACTION_BITS))


@dataclass(frozen=True)
class FloatFields:
    """Decomposed view of one or more FP32 values.

    Attributes:
        sign: 0 for positive values, 1 for negative values.
        exponent: biased exponent field (0..255).
        fraction: 23-bit fraction field (the leading implicit 1 is *not*
            included).
    """

    sign: np.ndarray
    exponent: np.ndarray
    fraction: np.ndarray

    @property
    def real_exponent(self) -> np.ndarray:
        """Unbiased exponent ``exponent - bias`` (as signed integers)."""
        return self.exponent.astype(np.int32) - FP32_BIAS

    @property
    def significand(self) -> np.ndarray:
        """The 24-bit significand ``1.fraction`` as an integer (1 << 23 | fraction)."""
        return (np.uint32(1) << FP32_FRACTION_BITS) | self.fraction


def as_f32(array: np.ndarray) -> np.ndarray:
    """``array`` as float32 *without copying* when it already is float32.

    The repository-wide no-copy dtype policy: ``ndarray.astype`` copies even
    for a matching dtype, and the CapsNet training hot path paid ~2s per
    cold Table-5 run in such redundant copies.  Non-float32 inputs go
    through :func:`numpy.asarray` (itself copy-free where possible).
    """
    if isinstance(array, np.ndarray) and array.dtype == np.float32:
        return array
    return np.asarray(array, dtype=np.float32)


def float_to_bits(value: np.ndarray | float) -> np.ndarray:
    """Reinterpret FP32 value(s) as their raw 32-bit unsigned representation."""
    arr = np.asarray(value, dtype=np.float32)
    return arr.view(np.uint32)


def bits_to_float(bits: np.ndarray | int) -> np.ndarray:
    """Reinterpret raw 32-bit pattern(s) as FP32 value(s)."""
    arr = np.asarray(bits, dtype=np.uint32)
    return arr.view(np.float32)


def decompose(value: np.ndarray | float) -> FloatFields:
    """Split FP32 value(s) into sign / biased exponent / fraction fields."""
    bits = float_to_bits(value)
    sign = (bits >> np.uint32(FP32_EXPONENT_BITS + FP32_FRACTION_BITS)) & np.uint32(1)
    exponent = (bits & FP32_EXPONENT_MASK) >> np.uint32(FP32_FRACTION_BITS)
    fraction = bits & FP32_FRACTION_MASK
    return FloatFields(sign=sign, exponent=exponent, fraction=fraction)


def compose(sign: np.ndarray, exponent: np.ndarray, fraction: np.ndarray) -> np.ndarray:
    """Assemble FP32 value(s) from sign / biased exponent / fraction fields.

    The fields are masked to their legal widths so callers may pass
    intermediate values that overflow the field (mirroring the "chucked bits"
    behaviour described in the paper's Fig. 12).
    """
    sign_bits = (np.asarray(sign, dtype=np.uint32) & np.uint32(1)) << np.uint32(
        FP32_EXPONENT_BITS + FP32_FRACTION_BITS
    )
    exp_bits = (
        np.asarray(exponent, dtype=np.uint32) & np.uint32((1 << FP32_EXPONENT_BITS) - 1)
    ) << np.uint32(FP32_FRACTION_BITS)
    frac_bits = np.asarray(fraction, dtype=np.uint32) & FP32_FRACTION_MASK
    return bits_to_float(sign_bits | exp_bits | frac_bits)


def shift_significand(value: np.ndarray | float, shift: int) -> np.ndarray:
    """Logically shift the significand of FP32 value(s).

    ``shift > 0`` shifts right (towards less significant bits, losing the
    lowest bits exactly like the "over-chucking" effect in the paper) and
    ``shift < 0`` shifts left.  The exponent field is adjusted accordingly so
    the represented value is unchanged except for chucked bits.

    This helper is primarily useful for tests that validate the PE datapath
    behaviour; the production approximations use fused formulations.
    """
    fields = decompose(value)
    significand = fields.significand.astype(np.int64)
    if shift >= 0:
        shifted = significand >> shift
    else:
        shifted = significand << (-shift)
    new_exponent = fields.exponent.astype(np.int64) + shift
    # Renormalize: the implicit leading one must sit at bit FP32_FRACTION_BITS.
    leading = np.where(shifted > 0, np.int64(np.floor(np.log2(np.maximum(shifted, 1)))), 0)
    correction = leading - FP32_FRACTION_BITS
    renorm = np.where(
        correction >= 0,
        shifted >> np.maximum(correction, 0),
        shifted << np.maximum(-correction, 0),
    )
    new_exponent = new_exponent + correction
    fraction = (renorm & np.int64(FP32_FRACTION_MASK)).astype(np.uint32)
    return compose(fields.sign, new_exponent.astype(np.uint32), fraction)


def ulp_distance(a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
    """Distance between FP32 values in units-in-the-last-place.

    Used by the test-suite to bound the error of the bit-level approximations
    in a representation-aware way.
    """
    ia = float_to_bits(a).astype(np.int64)
    ib = float_to_bits(b).astype(np.int64)
    # Map the sign-magnitude integer representation to a monotonic scale.
    ia = np.where(ia < 0x80000000, ia, 0x80000000 - ia)
    ib = np.where(ib < 0x80000000, ib, 0x80000000 - ib)
    return np.abs(ia - ib)
