"""Accuracy recovery for the PE's approximate special functions.

Section 5.2.2 ("Accuracy Recovery"): the exponent-matching step of the
approximate exponential may chuck several of the lowest significand bits,
introducing a small systematic bias.  The paper analyses 10,000 exponential
executions offline, records the mean percentage difference between the
approximated and exact results, and recovers accuracy at inference time by
enlarging the approximated result by that mean percentage -- a single extra
multiply per exponential, which the PE supports natively.

This module implements that calibration and the runtime correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arithmetic.approx import approx_exp, exact_exp

#: Number of samples the paper uses for the offline calibration.
DEFAULT_CALIBRATION_SAMPLES = 10_000


@dataclass(frozen=True)
class AccuracyRecovery:
    """Multiplicative correction applied to an approximate function's output.

    Attributes:
        scale: factor the approximate output is multiplied by at inference
            time (``1 + mean relative error`` of exact vs. approximate).
        mean_relative_error: the calibrated signed mean of
            ``(exact - approx) / exact``.
        samples: number of calibration samples used.
    """

    scale: float
    mean_relative_error: float
    samples: int

    def apply(self, approx_values: np.ndarray) -> np.ndarray:
        """Enlarge approximate outputs by the calibrated mean difference."""
        return (np.asarray(approx_values, dtype=np.float32) * np.float32(self.scale)).astype(
            np.float32
        )


def calibrate_recovery(
    exact_fn: Callable[[np.ndarray], np.ndarray],
    approx_fn: Callable[[np.ndarray], np.ndarray],
    samples: np.ndarray,
) -> AccuracyRecovery:
    """Calibrate a multiplicative recovery factor for an approximate function.

    Args:
        exact_fn: reference implementation.
        approx_fn: approximate implementation to be corrected.
        samples: calibration inputs (drawn from the operating range of the
            function inside the routing procedure).

    Returns:
        An :class:`AccuracyRecovery` whose ``scale`` minimizes the mean
        relative error of ``scale * approx_fn(x)`` against ``exact_fn(x)``.
    """
    samples = np.asarray(samples, dtype=np.float32)
    exact = np.asarray(exact_fn(samples), dtype=np.float64)
    approx = np.asarray(approx_fn(samples), dtype=np.float64)
    valid = np.abs(exact) > 1e-30
    rel = np.zeros_like(exact)
    rel[valid] = (exact[valid] - approx[valid]) / exact[valid]
    mean_rel = float(np.mean(rel[valid])) if np.any(valid) else 0.0
    return AccuracyRecovery(
        scale=1.0 + mean_rel,
        mean_relative_error=mean_rel,
        samples=int(samples.size),
    )


def calibrate_exp_recovery(
    num_samples: int = DEFAULT_CALIBRATION_SAMPLES,
    input_range: tuple[float, float] = (-10.0, 10.0),
    seed: int = 2020,
) -> AccuracyRecovery:
    """Offline calibration of the exponential recovery factor.

    The routing coefficients ``b_ij`` that feed the softmax are agreement
    accumulations that stay within a few units in practice; the default
    calibration range covers that regime generously.

    Args:
        num_samples: number of exponential executions to analyse (the paper
            uses 10,000).
        input_range: uniform sampling range of the calibration inputs.
        seed: RNG seed so the calibration is reproducible.

    Returns:
        The calibrated :class:`AccuracyRecovery` for :func:`approx_exp`.
    """
    rng = np.random.default_rng(seed)
    low, high = input_range
    if high <= low:
        raise ValueError(f"input_range must be increasing, got {input_range!r}")
    samples = rng.uniform(low, high, size=int(num_samples)).astype(np.float32)
    return calibrate_recovery(exact_exp, approx_exp, samples)
