"""Built-in design-point strategies (the eight configurations of Figs. 15-17).

The simulation recipes here are the former branch bodies of
``PIMCapsNet.simulate_routing`` / ``simulate_end_to_end``; the facade in
:mod:`repro.core.accelerator` now only dispatches through the strategy
registry.  Three families cover all eight built-in design points:

* :class:`GPUExecutionStrategy` -- GPU-only execution (baseline and the
  ideal-cache GPU-ICP): routing on the GPU simulator, serial host+RP
  pipeline.
* :class:`PIMPipelinedStrategy` -- the hybrid design points (PIM-CapsNet,
  PIM-Intra, PIM-Inter, RMAS-PIM, RMAS-GPU): routing on the HMC with the
  design's mapping/placement flags, end-to-end as a host/PIM pipeline under
  the design's memory-arbitration policy.
* :class:`AllInPIMStrategy` -- the whole network on the HMC, serial pipeline,
  power-gated GPU.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.accelerator import (
    DesignPoint,
    EndToEndComparison,
    PIMCapsNet,
    RoutingComparison,
)
from repro.core.rmas import SchedulerPolicy
from repro.engine.strategies import DesignLike, DesignPointStrategy, register_strategy
from repro.gpu.simulator import GPUSimulator
from repro.hmc.pe import OperationMix, PEOperation
from repro.hmc.vault import VaultWorkload


def dense_operation_mix(flops: float) -> OperationMix:
    """Operation mix of a dense stage executed on the HMC PEs (MACs only)."""
    return OperationMix().add(PEOperation.MAC, flops / 2.0)


# --------------------------------------------------------------- shared recipes


def routing_on_gpu(
    model: PIMCapsNet, design: DesignLike, *, ideal_cache: bool
) -> RoutingComparison:
    """Routing procedure executed on the (possibly ideal-cache) GPU."""
    simulator = GPUSimulator(model.gpu_device, model.gpu_params, ideal_cache=ideal_cache)
    profile = simulator.simulate_routing(model.workload.routing)
    energy = model.gpu_energy.phase_energy(
        profile.total_time,
        flops=model.workload.routing.total_flops(),
        dram_bytes=profile.offchip_traffic_bytes,
    )
    timing = profile.timing
    return RoutingComparison(
        design=design,
        benchmark=model.benchmark.name,
        time_seconds=profile.total_time,
        energy_joules=energy.total,
        time_components={
            "compute": timing.compute,
            "memory": timing.memory,
            "sync": timing.sync,
            "overhead": timing.overhead,
        },
        energy_components=energy.as_dict(),
    )


def routing_on_hmc(
    model: PIMCapsNet,
    design: DesignLike,
    *,
    custom_mapping: bool = True,
    interleaved_placement: bool = False,
) -> RoutingComparison:
    """Routing procedure executed on the HMC PEs.

    Args:
        custom_mapping: use the paper's bank-conflict-free address mapping
            (``False`` models PIM-Inter, which keeps the default mapping).
        interleaved_placement: keep operands interleaved across all vaults
            (``True`` models PIM-Intra, which lacks the inter-vault data
            placement, so most accesses are remote crossbar traffic).
    """
    plan = model.distribution_plan()
    device = model.hmc_device(custom_mapping=custom_mapping)

    crossbar_payload = plan.crossbar_payload_bytes
    crossbar_packets = plan.crossbar_packets
    per_vault_dram = plan.per_vault_dram_bytes
    receiver_ports = 1
    if interleaved_placement:
        # Without the inter-vault data placement the operands stay
        # interleaved across all vaults: (num_vaults-1)/num_vaults of every
        # access is remote and must cross the crossbar as 16-byte blocks,
        # spread over every vault port (all-to-all pattern).
        remote_fraction = (model.hmc_config.num_vaults - 1) / model.hmc_config.num_vaults
        remote_bytes = plan.total_dram_bytes * remote_fraction
        crossbar_payload = remote_bytes
        crossbar_packets = remote_bytes / model.hmc_config.block_bytes
        per_vault_dram = plan.total_dram_bytes / model.hmc_config.num_vaults
        receiver_ports = model.hmc_config.num_vaults

    utilization = model.intra_vault.utilization(
        plan.per_vault_parallel_suboperations, plan.secondary_parallelism
    )
    per_vault = VaultWorkload(
        operations=plan.per_vault_operations,
        dram_bytes=per_vault_dram,
        concurrent_requesters=model.hmc_config.pes_per_vault,
        pe_utilization=utilization,
    )
    execution = device.execute_distributed(
        per_vault,
        crossbar_payload_bytes=crossbar_payload,
        crossbar_packets=crossbar_packets,
        vaults_used=plan.vaults_used,
        crossbar_receiver_ports=receiver_ports,
    )
    energy = model.hmc_power.energy(
        execution,
        total_operations=plan.total_operations,
        total_dram_bytes=plan.total_dram_bytes,
        crossbar_payload_bytes=crossbar_payload,
    )
    return RoutingComparison(
        design=design,
        benchmark=model.benchmark.name,
        time_seconds=execution.total_time,
        energy_joules=energy.total,
        time_components={
            "execution": execution.execution_time,
            "xbar": execution.crossbar_time,
            "vrs": execution.vrs_time,
        },
        energy_components=energy.as_dict(),
        dimension=plan.dimension,
    )


# ------------------------------------------------------------ strategy families


class GPUExecutionStrategy(DesignPointStrategy):
    """GPU-only execution (the baseline and GPU-ICP design points)."""

    def __init__(self, key: DesignLike, *, ideal_cache: bool) -> None:
        self.key = str(key)
        self.ideal_cache = ideal_cache

    def simulate_routing(self, model, design=None) -> RoutingComparison:
        return routing_on_gpu(model, design or self.key, ideal_cache=self.ideal_cache)

    def simulate_end_to_end(self, model, design=None) -> EndToEndComparison:
        design = design or self.key
        host = model.host_stage()
        rp = model.simulate_routing(design)
        timing = model.pipeline.serial(host["time"], rp.time_seconds)
        host_energy = model.gpu_energy.phase_energy(host["time"], host["flops"], host["traffic"])
        energy = model.pipeline.num_batches * (host_energy.total + rp.energy_joules)
        return EndToEndComparison(
            design=design,
            benchmark=model.benchmark.name,
            timing=timing,
            energy_joules=energy,
            host_stage_seconds=host["time"],
            routing_stage_seconds=rp.time_seconds,
        )


class PIMPipelinedStrategy(DesignPointStrategy):
    """Hybrid GPU + HMC execution with a host/PIM pipeline.

    Covers PIM-CapsNet, the two partial designs (PIM-Intra / PIM-Inter) and
    the two naive arbitration schedulers (RMAS-PIM / RMAS-GPU); they differ
    only in the routing placement/mapping flags, the routing design whose
    numbers feed the pipeline, and the memory-arbitration policy.
    """

    def __init__(
        self,
        key: DesignLike,
        *,
        policy: SchedulerPolicy,
        rp_design: Optional[DesignLike] = None,
        custom_mapping: bool = True,
        interleaved_placement: bool = False,
    ) -> None:
        self.key = str(key)
        self.policy = policy
        self.rp_design = rp_design if rp_design is not None else key
        self.custom_mapping = custom_mapping
        self.interleaved_placement = interleaved_placement

    def simulate_routing(self, model, design=None) -> RoutingComparison:
        return routing_on_hmc(
            model,
            design or self.key,
            custom_mapping=self.custom_mapping,
            interleaved_placement=self.interleaved_placement,
        )

    def simulate_end_to_end(self, model, design=None) -> EndToEndComparison:
        design = design or self.key
        host = model.host_stage()
        rp = model.simulate_routing(self.rp_design)
        if self.policy is SchedulerPolicy.RMAS:
            # The runtime scheduler balances the two pipeline stages: it picks
            # the host-priority share that minimizes the steady-state latency.
            share = model.contention.optimal_share(
                host["time"], rp.time_seconds, model.hmc_config.num_vaults
            )
            host_slowdown, pim_slowdown = model.contention.slowdowns_for_share(share)
        else:
            decision = model.rmas.decide(
                targeted_vaults=model.hmc_config.num_vaults,
                queue_depth=model.rmas_queue_depth,
            )
            host_slowdown, pim_slowdown = model.contention.slowdowns(self.policy, decision)
        host_time = host["time"] * host_slowdown
        rp_time = rp.time_seconds * pim_slowdown
        timing = model.pipeline.pipelined(host_time, rp_time)

        host_energy = model.gpu_energy.phase_energy(host_time, host["flops"], host["traffic"])
        pim_energy_scale = pim_slowdown  # static HMC power accrues over the longer time
        gpu_idle_time = max(0.0, timing.total_time - model.pipeline.num_batches * host_time)
        energy = (
            model.pipeline.num_batches
            * (host_energy.total + rp.energy_joules * pim_energy_scale)
            + model.gpu_energy.idle_energy(gpu_idle_time).total
        )
        return EndToEndComparison(
            design=design,
            benchmark=model.benchmark.name,
            timing=timing,
            energy_joules=energy,
            host_stage_seconds=host_time,
            routing_stage_seconds=rp_time,
        )


class AllInPIMStrategy(DesignPointStrategy):
    """The whole network runs on the HMC; the GPU is power-gated."""

    def __init__(self, key: DesignLike, *, rp_design: DesignLike = DesignPoint.PIM_CAPSNET) -> None:
        self.key = str(key)
        self.rp_design = rp_design

    def simulate_routing(self, model, design=None) -> RoutingComparison:
        return routing_on_hmc(model, design or self.key)

    def simulate_end_to_end(self, model, design=None) -> EndToEndComparison:
        design = design or self.key
        host: Dict[str, float] = model.host_stage()
        rp = model.simulate_routing(self.rp_design)
        device = model.hmc_device(custom_mapping=True)
        host_execution = device.execute_dense(host["flops"], host["traffic"])
        host_time = host_execution.total_time
        timing = model.pipeline.serial(host_time, rp.time_seconds)
        host_energy = model.hmc_power.energy(
            host_execution,
            total_operations=dense_operation_mix(host["flops"]),
            total_dram_bytes=host["traffic"],
            crossbar_payload_bytes=0.0,
        )
        # With the whole network in memory the host GPU has no work at all
        # and is assumed to be power-gated, so no idle energy is charged.
        energy = model.pipeline.num_batches * (host_energy.total + rp.energy_joules)
        return EndToEndComparison(
            design=design,
            benchmark=model.benchmark.name,
            timing=timing,
            energy_joules=energy,
            host_stage_seconds=host_time,
            routing_stage_seconds=rp.time_seconds,
        )


# ------------------------------------------------------------------ registration

register_strategy(GPUExecutionStrategy(DesignPoint.BASELINE_GPU, ideal_cache=False))
register_strategy(GPUExecutionStrategy(DesignPoint.GPU_ICP, ideal_cache=True))
register_strategy(
    PIMPipelinedStrategy(DesignPoint.PIM_CAPSNET, policy=SchedulerPolicy.RMAS)
)
register_strategy(
    PIMPipelinedStrategy(
        DesignPoint.PIM_INTRA,
        policy=SchedulerPolicy.RMAS,
        interleaved_placement=True,
    )
)
register_strategy(
    PIMPipelinedStrategy(
        DesignPoint.PIM_INTER,
        policy=SchedulerPolicy.RMAS,
        custom_mapping=False,
    )
)
register_strategy(AllInPIMStrategy(DesignPoint.ALL_IN_PIM))
register_strategy(
    PIMPipelinedStrategy(
        DesignPoint.RMAS_PIM,
        policy=SchedulerPolicy.PIM_PRIORITY,
        rp_design=DesignPoint.PIM_CAPSNET,
    )
)
register_strategy(
    PIMPipelinedStrategy(
        DesignPoint.RMAS_GPU,
        policy=SchedulerPolicy.GPU_PRIORITY,
        rp_design=DesignPoint.PIM_CAPSNET,
    )
)
