"""Generic result serialization for structured (JSON) experiment output.

Experiment results are nested dataclasses keyed by enums (``DesignPoint``,
``StallClass``, ``Dimension``) and occasionally tuples; :func:`to_jsonable`
lowers any of them to plain ``dict`` / ``list`` / scalar values acceptable to
:mod:`json`.  Conversion rules:

* dataclass instances -> ``{field: value}`` dicts,
* enums -> their ``value``,
* mappings -> string keys (enum keys use their ``value``; tuple keys are
  joined with ``"/"``),
* sequences / sets -> lists,
* objects exposing ``to_dict()`` or ``as_dict()`` -> that dict,
* everything else JSON-native passes through, the rest falls back to ``str``.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Mapping


def to_jsonable(value: Any) -> Any:
    """Lower an arbitrary experiment result to JSON-serializable builtins."""
    if isinstance(value, Enum):
        return to_jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {_key_to_str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    for attr in ("to_dict", "as_dict"):
        method = getattr(value, attr, None)
        if callable(method):
            return to_jsonable(method())
    return str(value)


def _key_to_str(key: Any) -> str:
    """Mapping keys must be strings in JSON."""
    if isinstance(key, Enum):
        return str(key.value)
    if isinstance(key, tuple):
        return "/".join(_key_to_str(part) for part in key)
    return str(key)
