"""Generic result serialization for structured (JSON) experiment output.

Experiment results are nested dataclasses keyed by enums (``DesignPoint``,
``StallClass``, ``Dimension``) and occasionally tuples; :func:`to_jsonable`
lowers any of them to plain ``dict`` / ``list`` / scalar values acceptable to
:mod:`json`.  Conversion rules:

* dataclass instances -> ``{field: value}`` dicts,
* enums -> their ``value``,
* mappings -> string keys (enum keys use their ``value``; tuple keys are
  joined with ``"/"``; literal slashes and backslashes inside any string key
  or tuple component are escaped, so distinct keys never collide),
* sequences / sets -> lists,
* objects exposing ``to_dict()`` or ``as_dict()`` -> that dict,
* non-finite floats (``nan``, ``+/-inf``) -> ``None`` (strict JSON has no
  spelling for them, and ``json.dumps`` would otherwise emit invalid
  ``NaN``/``Infinity`` literals),
* cyclic references -> ``None`` at the point of revisit (a seen-set guards
  the recursion; sharing a value in two places -- a DAG -- is fine),
* everything else JSON-native passes through, the rest falls back to ``str``.
"""

from __future__ import annotations

import dataclasses
import math
from enum import Enum
from typing import Any, Mapping, Optional, Set


def to_jsonable(value: Any, _seen: Optional[Set[int]] = None) -> Any:
    """Lower an arbitrary experiment result to JSON-serializable builtins."""
    if isinstance(value, Enum):
        return to_jsonable(value.value, _seen)
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    # Everything below is a container (or lowers to one): guard against
    # reference cycles.  The id is removed again on the way out so shared
    # (but acyclic) sub-objects still serialize everywhere they appear.
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return None
    _seen.add(marker)
    try:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                field.name: to_jsonable(getattr(value, field.name), _seen)
                for field in dataclasses.fields(value)
            }
        if isinstance(value, Mapping):
            return {
                _key_to_str(key): to_jsonable(item, _seen) for key, item in value.items()
            }
        if isinstance(value, (list, tuple, set, frozenset)):
            return [to_jsonable(item, _seen) for item in value]
        for attr in ("to_dict", "as_dict"):
            method = getattr(value, attr, None)
            if callable(method):
                return to_jsonable(method(), _seen)
        return str(value)
    finally:
        _seen.discard(marker)


def _key_to_str(key: Any) -> str:
    """Mapping keys must be strings in JSON.

    Literal separators inside string keys are escaped and tuple components
    joined with an *unescaped* ``/``, so ``("a/b", "c")``, ``("a", "b/c")``
    and the plain string ``"a/b"`` all serialize to distinct keys --
    user-named WorkloadSpecs can legally contain ``/``.
    """
    if isinstance(key, tuple):
        # Nested tuples get their joined form re-escaped (flattening one
        # level, like the pre-escaping serializer did).
        return "/".join(
            _escape_key_part(_key_to_str(part))
            if isinstance(part, tuple)
            else _key_to_str(part)
            for part in key
        )
    if isinstance(key, Enum):
        return _escape_key_part(str(key.value))
    return _escape_key_part(str(key))


def _escape_key_part(part: str) -> str:
    r"""Escape the tuple-key separator (``/`` -> ``\/``, ``\`` -> ``\\``)."""
    return part.replace("\\", "\\\\").replace("/", "\\/")
