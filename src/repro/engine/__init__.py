"""Unified experiment engine.

The engine splits the reproduction harness into three pluggable layers:

* :mod:`repro.engine.strategies` -- the *strategy* layer: every design point
  evaluated by the paper (and any custom one) is a
  :class:`~repro.engine.strategies.DesignPointStrategy` behind a registry, so
  new scenarios are added by registration instead of editing
  :mod:`repro.core.accelerator`.
* :mod:`repro.engine.context` -- the *simulation* layer: a
  :class:`~repro.engine.context.SimulationContext` memoizes
  :class:`~repro.core.accelerator.PIMCapsNet` instances and their
  ``(benchmark, design)`` routing / end-to-end results so independent
  experiments never pay for the same simulation twice, and provides the
  thread pool used to run independent work concurrently.
* :mod:`repro.engine.experiment` -- the *experiment* layer: an
  :class:`~repro.engine.experiment.Experiment` base class plus a registry
  (absorbing the old ``runner.EXPERIMENTS`` table) with structured
  :meth:`~repro.engine.experiment.Experiment.to_dict` output next to the
  plain-text reports, and :mod:`repro.engine.runner` to execute any subset
  of experiments over a shared context.
"""

from repro.engine.context import CacheStats, SimulationContext
from repro.engine.experiment import (
    Experiment,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.engine.runner import RunnerResult, run_experiments
from repro.engine.serialize import to_jsonable
from repro.engine.strategies import (
    DesignPointStrategy,
    design_key,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

__all__ = [
    "CacheStats",
    "DesignPointStrategy",
    "Experiment",
    "RunnerResult",
    "SimulationContext",
    "design_key",
    "experiment_names",
    "get_experiment",
    "get_strategy",
    "register_experiment",
    "register_strategy",
    "run_experiments",
    "strategy_names",
    "to_jsonable",
    "unregister_strategy",
]
