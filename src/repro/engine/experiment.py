"""Experiment base class and registry.

Every reproduction experiment (one per evaluation figure/table of the paper)
is an :class:`Experiment` subclass registered under its short name
(``"fig15"``, ``"table5"``, ...).  The registry absorbs the old
``repro.experiments.runner.EXPERIMENTS`` function table: the engine runner,
the CLI and the library API all resolve experiments here.

An experiment implements

* :meth:`Experiment.run` -- compute the structured result, pulling shared
  simulations from the :class:`~repro.engine.context.SimulationContext`,
* :meth:`Experiment.format_report` -- render the plain-text table(s), and
* :meth:`Experiment.to_dict` -- structured (JSON-ready) output; the default
  lowers the result with :func:`repro.engine.serialize.to_jsonable`.

The built-in experiments live next to their ``run()`` / ``format_report()``
module functions in :mod:`repro.experiments` and are loaded lazily, in the
paper's figure order, on first registry access.
"""

from __future__ import annotations

import importlib
import threading
from typing import Dict, List, Optional

from repro.engine.context import SimulationContext
from repro.engine.serialize import to_jsonable

#: Modules defining (and registering) the built-in experiments, in report order.
_BUILTIN_MODULES = (
    "repro.experiments.fig04_layer_breakdown",
    "repro.experiments.fig05_stall_breakdown",
    "repro.experiments.fig06_onchip_storage",
    "repro.experiments.fig07_bandwidth",
    "repro.experiments.fig15_rp_acceleration",
    "repro.experiments.fig16_pim_breakdown",
    "repro.experiments.fig17_end_to_end",
    "repro.experiments.fig18_frequency_sweep",
    "repro.experiments.table05_accuracy",
    "repro.experiments.overhead",
)

#: Canonical report order of the built-in experiments.  Experiment modules
#: self-register on import, so the registry's insertion order depends on
#: which module happened to be imported first; this list pins the order the
#: combined report (and ``experiment_names``) always uses.  Custom
#: experiments sort after the built-ins, in registration order.
_CANONICAL_ORDER = (
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "table5",
    "overhead",
)

_REGISTRY: Dict[str, "Experiment"] = {}
_REGISTRY_LOCK = threading.RLock()
_BUILTINS_LOADED = False
_BUILTINS_LOADING = False


class Experiment:
    """One reproduction experiment (a figure or table of the paper)."""

    #: Registry name (``"fig15"``, ``"table5"``, ...).
    name: str = ""
    #: Human-readable one-liner (shown in structured output).
    title: str = ""
    #: True for experiments that are orders of magnitude slower than the rest
    #: (currently only Table 5, which trains networks).
    slow: bool = False

    def run(self, context: SimulationContext, benchmarks: Optional[List[str]] = None):
        """Compute the structured result object.

        ``context`` carries the hardware :class:`~repro.api.scenario.Scenario`
        (``context.scenario``) every simulation must be built from --
        experiments must not assume default hardware themselves.
        ``benchmarks`` (already defaulted from the scenario by the runner)
        restricts the Table-1 benchmarks evaluated.
        """
        raise NotImplementedError

    def format_report(self, result) -> str:
        """Render the result as the plain-text report."""
        raise NotImplementedError

    def to_dict(self, result) -> dict:
        """Structured output (JSON-ready) for the result."""
        return {
            "experiment": self.name,
            "title": self.title,
            "data": to_jsonable(result),
        }

    def run_standalone(self, benchmarks: Optional[List[str]] = None, scenario=None):
        """Run with a private, serial context (library convenience).

        ``scenario`` optionally picks the hardware
        :class:`~repro.api.scenario.Scenario` (paper default otherwise).
        """
        context = SimulationContext(max_workers=1, scenario=scenario)
        if benchmarks is None:
            benchmarks = context.scenario.benchmark_selection()
        return self.run(context, benchmarks=benchmarks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def register_experiment(experiment_cls):
    """Class decorator registering an :class:`Experiment` subclass."""
    experiment = experiment_cls()
    if not experiment.name:
        raise ValueError(f"{experiment_cls.__name__} has no registry name")
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(experiment.name)
        if existing is not None and type(existing) is not experiment_cls:
            raise ValueError(f"an experiment is already registered as {experiment.name!r}")
        _REGISTRY[experiment.name] = experiment
    return experiment_cls


def get_experiment(name: str) -> Experiment:
    """Look up one registered experiment by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; valid names: {experiment_names()}"
        ) from None


def experiment_names() -> List[str]:
    """Registered experiment names in canonical report order."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        names = list(_REGISTRY)
    rank = {name: index for index, name in enumerate(_CANONICAL_ORDER)}
    return sorted(names, key=lambda name: rank.get(name, len(_CANONICAL_ORDER)))


def _ensure_builtins() -> None:
    """Import the built-in experiment modules exactly once, in report order.

    The imports happen under the (reentrant) registry lock so concurrent
    callers never observe a partially populated registry; the loading flag
    short-circuits the recursive :func:`register_experiment` calls the
    imports themselves make.
    """
    global _BUILTINS_LOADED, _BUILTINS_LOADING
    if _BUILTINS_LOADED:
        return
    with _REGISTRY_LOCK:
        if _BUILTINS_LOADED or _BUILTINS_LOADING:
            return
        _BUILTINS_LOADING = True
        try:
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)
            _BUILTINS_LOADED = True
        finally:
            _BUILTINS_LOADING = False
