"""Persistent, content-addressed on-disk cache for simulation results.

The in-memory caches (:class:`~repro.engine.context.SimulationContext`,
:class:`~repro.core.accelerator.PIMCapsNet`) only live for one process; a
design-space sweep re-running the same ``(scenario, benchmark, design)``
points across invocations -- or fanning points out over a process pool --
pays for every simulation again.  :class:`SimulationCache` memoizes those
results on disk instead:

* **Content-addressed keys.**  An entry is keyed by the SHA-256 digest of a
  canonical JSON payload: the cache schema version, the scenario's hardware
  hash (:meth:`~repro.api.scenario.Scenario.hardware_hash`), the resolved
  benchmark's content hash, the simulation kind (``routing`` /
  ``end_to_end``), the design-point key and the per-call overrides
  (``pe_frequency_mhz``, ``force_dimension``).  Two scenarios that differ
  only in their *name* share entries; any hardware or workload change misses.
* **Scenario-sharded, versioned layout.**  All entries of one scenario live
  in a single shard file, ``<dir>/v<schema>/<aa>/<scenario-hash>.json``
  (``~/.cache/repro`` by default; override with ``directory=`` /
  ``--cache-dir`` / ``$REPRO_CACHE_DIR``).  A sweep point touches exactly one
  shard, so a whole grid costs one small file per point instead of one file
  per simulation -- the difference between write-bound and compute-bound
  cold runs.  Bumping :data:`CACHE_SCHEMA_VERSION` orphans old trees instead
  of misreading them; stale trees can simply be deleted (every entry is
  re-creatable).
* **Buffered writes, atomic publish.**  ``put`` buffers in memory;
  :meth:`SimulationCache.flush` merges each dirty shard with whatever
  reached disk meanwhile (buffered entries win on conflict) and publishes it
  through a temporary file and an atomic :func:`os.replace`.  Concurrent
  workers therefore never observe half-written shards, and writers sharing a
  shard keep each other's entries.  The engine flushes automatically at the
  end of a runner/sweep-point execution.
* **Exact round-trips.**  Results are stored with full float precision
  (``repr`` round-trip through JSON is exact for IEEE doubles), so a report
  rendered from a warm cache is byte-identical to a cold run's.

Only the two engine result types (:class:`~repro.core.accelerator.
RoutingComparison`, :class:`~repro.core.accelerator.EndToEndComparison`) are
persisted; custom strategy result types are silently skipped (they still hit
the in-memory caches).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import sys
import tempfile
import threading
import zipfile
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX-only; shard flushes degrade to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.accelerator import EndToEndComparison, RoutingComparison
from repro.core.pipeline import PipelineTiming
from repro.engine.strategies import DesignLike, design_key, resolve_design
from repro.faults import point as fault_point
from repro.faults.retry import is_fatal_io, with_retries
from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.parallelism import Dimension

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario
    from repro.engine.context import CacheStats

#: Version of the on-disk shard format.  Bump whenever the key payload or the
#: result encoding changes shape; old shards are then never consulted.
CACHE_SCHEMA_VERSION = 1

#: Version of the trained-model artifact format (:class:`TrainedModelCache`).
#: Bump whenever the key payload, the training pipeline's arithmetic, or the
#: artifact encoding changes; old model trees are then never consulted.
MODEL_CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: One-shot warning registry: each degradation condition warns exactly once
#: per process (a sweep hitting ENOSPC must not print one line per shard).
_WARN_LOCK = threading.Lock()
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    """Print ``message`` to stderr the first time ``key`` degrades."""
    with _WARN_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    print(f"repro cache warning: {message}", file=sys.stderr)


def _reset_warnings() -> None:
    """Forget which degradations already warned (test isolation hook)."""
    with _WARN_LOCK:
        _WARNED.clear()


def _quarantine(path: Path, root: Path) -> Optional[Path]:
    """Move a corrupt artifact to ``<root>/corrupt/`` so it is never re-read.

    Returns the quarantine destination, or ``None`` when the move failed
    (the artifact is then unlinked as a fallback -- every cache entry is
    re-creatable, so dropping a corrupt one is always safe).
    """
    target = root / "corrupt" / path.name
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with_retries(lambda: os.replace(path, target))
        return target
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def default_cache_dir() -> Path:
    """The default persistent cache root (``$REPRO_CACHE_DIR`` wins).

    Falls back to ``$XDG_CACHE_HOME/repro`` and finally ``~/.cache/repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def canonical_digest(payload: object) -> str:
    """SHA-256 hex digest of a JSON-serializable payload (sorted keys)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=256)
def benchmark_hash(config: BenchmarkConfig) -> str:
    """Content hash of one resolved benchmark/workload configuration.

    Memoized (configs are frozen and hashable) so per-lookup keying stays
    cheap even for sweeps with thousands of cache accesses.
    """
    return canonical_digest(dataclasses.asdict(config))


class SimulationCache:
    """Content-addressed on-disk memo of ``(scenario, benchmark, design)`` results.

    Args:
        directory: cache root (:func:`default_cache_dir` when ``None``);
            shards live in a version subdirectory below it.
        version: shard schema version (:data:`CACHE_SCHEMA_VERSION`; tests
            override it to exercise invalidation).

    Attributes:
        stats: hit/miss counters of this cache instance
            (:class:`~repro.engine.context.CacheStats`).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        # Imported here: context imports this module at load time.
        from repro.engine.context import CacheStats

        self.root = Path(directory) if directory is not None else default_cache_dir()
        self.version = int(version)
        self.directory = self.root / f"v{self.version}"
        self.stats: "CacheStats" = CacheStats()
        #: True once a fatal disk error (ENOSPC/EACCES/...) degraded this
        #: cache to read-only: gets still work, flushes become no-ops.
        self.read_only = False
        self._lock = threading.RLock()
        #: scenario hash -> {entry digest: {"key": ..., "result": ...}}
        self._shards: Dict[str, Dict[str, dict]] = {}
        self._dirty: Dict[str, bool] = {}

    # ----------------------------------------------------------------- keying

    def entry_key(
        self,
        scenario: Union["Scenario", str],
        benchmark: BenchmarkConfig,
        kind: str,
        design: DesignLike,
        pe_frequency_mhz: Optional[float],
        force_dimension: Optional[Dimension],
    ) -> dict:
        """The canonical (JSON) key payload of one simulation.

        ``scenario`` may be a :class:`~repro.api.scenario.Scenario` or an
        already-computed hardware hash string -- bulk callers (the vectorized
        sweep backend) key thousands of grid points without building a
        scenario object per point.
        """
        return {
            "schema": self.version,
            "scenario": scenario if isinstance(scenario, str) else scenario.hardware_hash(),
            "workload": benchmark_hash(benchmark),
            "kind": str(kind),
            "design": design_key(design),
            "pe_frequency_mhz": pe_frequency_mhz,
            "force_dimension": (
                force_dimension.value if force_dimension is not None else None
            ),
        }

    def _shard_path(self, scenario_hash: str) -> Path:
        return self.directory / scenario_hash[:2] / f"{scenario_hash}.json"

    @contextmanager
    def _shard_write_lock(self, path: Path):
        """Exclusive advisory lock serializing read-merge-publish on a shard.

        Without it two writers sharing a shard (thread- or process-parallel
        sweep points, e.g. over a ``benchmarks`` axis that keeps the hardware
        hash constant) can interleave ``_read_disk`` and ``os.replace`` so
        that the slower writer publishes a merge that never saw the faster
        writer's entries -- a classic lost update, observed as a warm sweep
        re-running simulations.  On platforms without :mod:`fcntl` the flush
        stays best-effort (the cache remains correct, merely lossy under
        concurrency).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "a+", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _read_disk(self, scenario_hash: str) -> Dict[str, dict]:
        """One scenario's entry map as currently on disk (fresh read).

        Missing or unreadable shards count as empty.  A shard that exists
        but holds invalid JSON (a torn write from a non-atomic producer, or
        real disk corruption) is quarantined to ``<root>/corrupt/`` and
        counted, so it is warned about once instead of silently re-missed
        on every lookup forever.
        """
        path = self._shard_path(scenario_hash)
        try:
            fault_point("diskcache.shard.read", path=path)
            text = path.read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("shard payload is not a JSON object")
        except ValueError:
            self.stats.corrupt_artifacts += 1
            quarantined = _quarantine(path, self.root)
            where = f"quarantined to {quarantined}" if quarantined else "dropped"
            _warn_once(
                f"corrupt-shard:{path}",
                f"corrupt cache shard {path} ({where}); "
                f"its entries will be recomputed",
            )
            return {}
        if (
            data.get("schema") == self.version
            and data.get("scenario") == scenario_hash
            and isinstance(data.get("entries"), dict)
        ):
            return data["entries"]
        # Valid JSON of the wrong shape/version: not corruption, just a
        # foreign file; treat as empty and let the next flush rewrite it.
        return {}

    def _shard(self, scenario_hash: str) -> Dict[str, dict]:
        """The (memoized) entry map of one scenario, loaded from disk once."""
        with self._lock:
            shard = self._shards.get(scenario_hash)
            if shard is None:
                shard = self._read_disk(scenario_hash)
                self._shards[scenario_hash] = shard
            return shard

    # ---------------------------------------------------------------- get/put

    def get(
        self,
        scenario: "Scenario",
        benchmark: BenchmarkConfig,
        kind: str,
        design: DesignLike,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> Optional[object]:
        """The cached result for one simulation, or ``None`` on a miss.

        Unreadable, corrupt or schema-mismatched entries count as misses.
        """
        key = self.entry_key(
            scenario, benchmark, kind, design, pe_frequency_mhz, force_dimension
        )
        shard = self._shard(key["scenario"])
        entry = shard.get(canonical_digest(key))
        try:
            if entry is None or entry.get("key") != key:
                raise ValueError("missing or mismatched cache entry")
            result = decode_result(entry["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        scenario: "Scenario",
        benchmark: BenchmarkConfig,
        kind: str,
        design: DesignLike,
        result: object,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> bool:
        """Buffer one simulation result; ``False`` if its type is uncacheable.

        Buffered entries are immediately visible to :meth:`get` on this
        instance and reach disk on the next :meth:`flush`.
        """
        payload = encode_result(result)
        if payload is None:
            return False
        key = self.entry_key(
            scenario, benchmark, kind, design, pe_frequency_mhz, force_dimension
        )
        with self._lock:
            shard = self._shard(key["scenario"])
            shard[canonical_digest(key)] = {"key": key, "result": payload}
            self._dirty[key["scenario"]] = True
        return True

    # -------------------------------------------------------------- bulk I/O

    @staticmethod
    def _split_request(request: Sequence[object]):
        """Unpack one bulk request tuple, defaulting the per-call overrides."""
        scenario, benchmark, kind, design = request[:4]
        pe_frequency_mhz = request[4] if len(request) > 4 else None
        force_dimension = request[5] if len(request) > 5 else None
        return scenario, benchmark, kind, design, pe_frequency_mhz, force_dimension

    def get_many(self, requests: Iterable[Sequence[object]]) -> List[Optional[object]]:
        """Bulk :meth:`get`: one result (or ``None``) per request, in order.

        Each request is a ``(scenario, benchmark, kind, design)`` tuple,
        optionally extended with ``pe_frequency_mhz`` and ``force_dimension``;
        ``scenario`` may be a hardware-hash string.  Requests are grouped by
        scenario shard so a whole grid plane costs one shard load and one key
        pass instead of a dictionary walk per entry.  Hit/miss accounting is
        identical to issuing the gets one by one.
        """
        requests = list(requests)
        results: List[Optional[object]] = [None] * len(requests)
        grouped: Dict[str, List[tuple]] = {}
        for index, request in enumerate(requests):
            key = self.entry_key(*self._split_request(request))
            grouped.setdefault(key["scenario"], []).append((index, key))
        for scenario_hash, entries in grouped.items():
            shard = self._shard(scenario_hash)
            for index, key in entries:
                entry = shard.get(canonical_digest(key))
                try:
                    if entry is None or entry.get("key") != key:
                        raise ValueError("missing or mismatched cache entry")
                    result = decode_result(entry["result"])
                except (ValueError, KeyError, TypeError):
                    self.stats.misses += 1
                    continue
                self.stats.hits += 1
                results[index] = result
        return results

    def put_many(self, entries: Iterable[Sequence[object]]) -> int:
        """Bulk :meth:`put` under one lock acquisition; returns entries stored.

        Each entry is a ``(scenario, benchmark, kind, design, result)`` tuple
        (optionally extended like :meth:`get_many` requests); ``scenario`` may
        be a hardware-hash string.  Uncacheable result types are skipped, like
        :meth:`put` returning ``False``.
        """
        stored = 0
        with self._lock:
            for entry in entries:
                request, result = (*entry[:4], *entry[5:]), entry[4]
                payload = encode_result(result)
                if payload is None:
                    continue
                scenario, benchmark, kind, design, pe, dim = self._split_request(request)
                key = self.entry_key(scenario, benchmark, kind, design, pe, dim)
                shard = self._shard(key["scenario"])
                shard[canonical_digest(key)] = {"key": key, "result": payload}
                self._dirty[key["scenario"]] = True
                stored += 1
        return stored

    def flush(self) -> int:
        """Publish every dirty shard atomically; returns shards written.

        Transient write errors are retried with deterministic backoff; a
        fatal disk error (full, read-only, permission denied) degrades the
        cache to read-only with a one-shot warning and a ``write_errors``
        count instead of aborting the run -- entries stay buffered in
        memory, so in-process gets keep working.
        """
        written = 0
        with self._lock:
            if self.read_only:
                return 0
            dirty = [hash_ for hash_, flag in self._dirty.items() if flag]
            for scenario_hash in dirty:
                path = self._shard_path(scenario_hash)

                def _publish() -> None:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    # The read-merge-publish below must be one critical
                    # section: without the shard lock, two writers sharing a
                    # shard can both read, then both publish, and the second
                    # replace silently drops the first writer's entries.
                    with self._shard_write_lock(path):
                        # Merge what reached disk since we loaded (another
                        # worker may share this shard -- e.g. sweep axes over
                        # selections keep the hardware hash constant); our
                        # buffered entries win on conflict, and nothing
                        # another writer published is lost.
                        on_disk = self._read_disk(scenario_hash)
                        if on_disk:
                            merged = {**on_disk, **self._shards[scenario_hash]}
                            self._shards[scenario_hash] = merged
                        data = {
                            "schema": self.version,
                            "scenario": scenario_hash,
                            "entries": self._shards[scenario_hash],
                        }
                        # Atomic publish: readers (which take no lock) never
                        # see partial files.
                        fd, tmp = tempfile.mkstemp(
                            prefix=path.stem, suffix=".tmp", dir=str(path.parent)
                        )
                        try:
                            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                                handle.write(json.dumps(data))
                            fault_point("diskcache.flush.write", path=tmp)
                            fault_point("diskcache.flush.replace")
                            os.replace(tmp, path)
                        except BaseException:
                            try:
                                os.unlink(tmp)
                            except OSError:
                                pass
                            raise

                try:
                    with_retries(_publish)
                except OSError as error:
                    self.stats.write_errors += 1
                    if is_fatal_io(error):
                        self._degrade(error)
                        break
                    continue
                self._dirty[scenario_hash] = False
                written += 1
        return written

    def _degrade(self, error: OSError) -> None:
        """Flip to read-only after a fatal disk error (one-shot warning)."""
        self.read_only = True
        _warn_once(
            f"read-only:{self.directory}",
            f"simulation cache {self.directory} degraded to read-only after "
            f"{type(error).__name__}: {error}; results stay in memory for "
            f"this run but will not persist",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationCache({str(self.directory)!r})"


# ------------------------------------------------------------- result codecs


def encode_result(result: object) -> Optional[dict]:
    """Lower an engine result to its JSON entry payload (``None`` = uncacheable)."""
    if type(result) is RoutingComparison:
        return {
            "type": "routing",
            "design": design_key(result.design),
            "benchmark": result.benchmark,
            "time_seconds": result.time_seconds,
            "energy_joules": result.energy_joules,
            "time_components": dict(result.time_components),
            "energy_components": dict(result.energy_components),
            "dimension": result.dimension.value if result.dimension is not None else None,
        }
    if type(result) is EndToEndComparison:
        return {
            "type": "end_to_end",
            "design": design_key(result.design),
            "benchmark": result.benchmark,
            "timing": {
                "host_stage_time": result.timing.host_stage_time,
                "routing_stage_time": result.timing.routing_stage_time,
                "num_batches": result.timing.num_batches,
                "pipelined": result.timing.pipelined,
            },
            "energy_joules": result.energy_joules,
            "host_stage_seconds": result.host_stage_seconds,
            "routing_stage_seconds": result.routing_stage_seconds,
        }
    return None


def decode_result(payload: dict) -> object:
    """Rebuild the typed engine result from its JSON entry payload."""
    kind = payload["type"]
    if kind == "routing":
        dimension = payload["dimension"]
        return RoutingComparison(
            design=resolve_design(payload["design"]),
            benchmark=payload["benchmark"],
            time_seconds=float(payload["time_seconds"]),
            energy_joules=float(payload["energy_joules"]),
            time_components={
                str(key): float(value)
                for key, value in payload["time_components"].items()
            },
            energy_components={
                str(key): float(value)
                for key, value in payload["energy_components"].items()
            },
            dimension=Dimension(dimension) if dimension is not None else None,
        )
    if kind == "end_to_end":
        timing = payload["timing"]
        return EndToEndComparison(
            design=resolve_design(payload["design"]),
            benchmark=payload["benchmark"],
            timing=PipelineTiming(
                host_stage_time=float(timing["host_stage_time"]),
                routing_stage_time=float(timing["routing_stage_time"]),
                num_batches=int(timing["num_batches"]),
                pipelined=bool(timing["pipelined"]),
            ),
            energy_joules=float(payload["energy_joules"]),
            host_stage_seconds=float(payload["host_stage_seconds"]),
            routing_stage_seconds=float(payload["routing_stage_seconds"]),
        )
    raise ValueError(f"unknown cache entry type {kind!r}")


# ---------------------------------------------------------- trained models


@dataclasses.dataclass
class TrainedModelArtifact:
    """One cached Table-5 training run.

    Attributes:
        state: the trained network's parameters
            (:meth:`~repro.capsnet.model.CapsNet.state_dict` layout).
        accuracies: per-arithmetic-context test accuracies (e.g. ``origin`` /
            ``approx`` / ``recovered``), stored with exact float round-trips
            so reports rendered from a warm cache stay byte-identical.
    """

    state: Dict[str, "np.ndarray"]
    accuracies: Dict[str, float]


class TrainedModelCache:
    """Persistent, content-addressed cache of trained CapsNet models.

    The second artifact kind of the on-disk cache: where
    :class:`SimulationCache` memoizes analytic simulation results,
    this memoizes the *expensive* part of a reproduction -- the functional
    CapsNet training behind Table 5 (~99.9% of a cold ``repro reproduce``).

    * **Content-addressed keys.**  The caller provides a canonical JSON key
      payload covering everything that determines the trained weights and
      the measured accuracies: the dataset spec's content hash and split
      sizes, the :class:`~repro.capsnet.model.CapsNetConfig`, the trainer
      hyper-parameters (optimizer, learning rate, epochs, batch size,
      seed), and a schema describing the arithmetic contexts evaluated.
      The cache prepends its own schema version; any change misses.
    * **One ``.npz`` per model**, under ``<root>/models-v<schema>/<aa>/``,
      holding the full ``state_dict`` plus JSON metadata (the key, for
      collision detection, and the per-context accuracies).  Artifacts are
      published atomically (temp file + :func:`os.replace`), and corrupt or
      mismatched files count as misses -- the caller simply retrains and
      rewrites them.

    Args:
        directory: cache root (:func:`default_cache_dir` when ``None``);
            model artifacts live in a ``models-v<schema>`` subdirectory.
        version: artifact schema version (tests override to exercise
            invalidation).

    Attributes:
        stats: hit/miss counters (:class:`~repro.engine.context.CacheStats`).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        version: int = MODEL_CACHE_SCHEMA_VERSION,
    ) -> None:
        from repro.engine.context import CacheStats

        self.root = Path(directory) if directory is not None else default_cache_dir()
        self.version = int(version)
        self.directory = self.root / f"models-v{self.version}"
        self.stats: "CacheStats" = CacheStats()
        #: True once a fatal disk error degraded this cache to read-only.
        self.read_only = False
        self._lock = threading.RLock()

    @staticmethod
    def _normalize(key: dict) -> dict:
        # JSON round-trip so callers may use tuples etc.; the stored key (and
        # the mismatch check in get) always sees the canonical JSON shape.
        return json.loads(json.dumps(key, sort_keys=True))

    def _digest(self, key: dict) -> str:
        return canonical_digest({"schema": self.version, "key": key})

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.npz"

    def get(self, key: dict) -> Optional[TrainedModelArtifact]:
        """The cached artifact for one training key, or ``None`` on a miss.

        Missing, unreadable, corrupt, truncated or key-mismatched artifacts
        all count as misses (the caller falls back to training).
        """
        import numpy as np

        key = self._normalize(key)
        digest = self._digest(key)
        path = self._path(digest)
        try:
            fault_point("modelcache.read", path=path)
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["__meta__"][()]))
                if meta.get("schema") != self.version or meta.get("key") != key:
                    raise ValueError("cache key mismatch")
                accuracies = {
                    str(label): float(value)
                    for label, value in meta["accuracies"].items()
                }
                state = {
                    name[len("param/"):]: data[name]
                    for name in data.files
                    if name.startswith("param/")
                }
        except OSError:
            # Missing or unreadable: a plain miss (the caller retrains).
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, zipfile.BadZipFile):
            # The file exists but its content is torn/corrupt/mismatched:
            # quarantine it so the broken artifact is never consulted again.
            self.stats.misses += 1
            self.stats.corrupt_artifacts += 1
            quarantined = _quarantine(path, self.root)
            where = f"quarantined to {quarantined}" if quarantined else "dropped"
            _warn_once(
                f"corrupt-model:{path}",
                f"corrupt trained-model artifact {path} ({where}); "
                f"the model will be retrained",
            )
            return None
        self.stats.hits += 1
        return TrainedModelArtifact(state=state, accuracies=accuracies)

    def put(
        self,
        key: dict,
        state: Dict[str, "np.ndarray"],
        accuracies: Dict[str, float],
    ) -> bool:
        """Persist one trained model atomically; ``False`` if the disk refuses.

        Transient write errors are retried with deterministic backoff; a
        fatal disk error (full, read-only, permission denied) degrades the
        cache to read-only with a one-shot warning and a ``write_errors``
        count, after which puts are no-ops.
        """
        import numpy as np

        key = self._normalize(key)
        digest = self._digest(key)
        path = self._path(digest)
        meta = {
            "schema": self.version,
            "key": key,
            "accuracies": {str(label): float(value) for label, value in accuracies.items()},
        }
        arrays = {f"param/{name}": value for name, value in state.items()}
        arrays["__meta__"] = np.array(json.dumps(meta, sort_keys=True))
        with self._lock:
            if self.read_only:
                return False

            def _publish() -> None:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    prefix=path.stem, suffix=".npz.tmp", dir=str(path.parent)
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        np.savez(handle, **arrays)
                    fault_point("modelcache.write", path=tmp)
                    fault_point("modelcache.replace")
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise

            try:
                with_retries(_publish)
            except OSError as error:
                self.stats.write_errors += 1
                if is_fatal_io(error):
                    self.read_only = True
                    _warn_once(
                        f"read-only:{self.directory}",
                        f"trained-model cache {self.directory} degraded to "
                        f"read-only after {type(error).__name__}: {error}; "
                        f"models will be retrained instead of persisted",
                    )
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrainedModelCache({str(self.directory)!r})"
