"""Shared simulation state for the experiment engine.

A :class:`SimulationContext` owns every :class:`~repro.core.accelerator.
PIMCapsNet` instance built during a run and memoizes the ``(benchmark,
design)`` routing / end-to-end results, so experiments that look at the same
design points (Figs. 15, 16 and 17 all need the GPU baseline and the
PIM-CapsNet routing numbers, for example) never pay for the same simulation
twice.  It also carries the engine's thread pool: :meth:`SimulationContext.map`
runs a per-item function concurrently while preserving input order, which
keeps reports deterministic.

Every context simulates exactly one hardware
:class:`~repro.api.scenario.Scenario` (the paper default when none is
given): the scenario supplies the HMC configuration, the host GPU and its
cost model, and the pipeline/RMAS parameters of every model the context
builds, so experiments never assume hardware defaults themselves.
"""

from __future__ import annotations

import copy
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple, TypeVar, Union

from repro.core.accelerator import EndToEndComparison, PIMCapsNet, RoutingComparison
from repro.engine.strategies import DesignLike, design_key
from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.catalog import WorkloadCatalog
from repro.workloads.parallelism import Dimension

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.scenario import Scenario
    from repro.engine.diskcache import SimulationCache, TrainedModelCache

T = TypeVar("T")
R = TypeVar("R")

#: Upper bound on the engine's default worker count; the simulations are
#: numpy-light analytical models, so a modest pool already saturates them.
MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """Default thread-pool size (bounded CPU count)."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


@dataclass
class CacheStats:
    """Hit/miss (and degradation) counters of one cache instance.

    ``corrupt_artifacts`` and ``write_errors`` only move for the on-disk
    caches: corrupt/truncated files that were quarantined, and flushes or
    publishes the disk refused (after retries).
    """

    hits: int = 0
    misses: int = 0
    corrupt_artifacts: int = 0
    write_errors: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.requests if self.requests else 0.0


class SimulationContext:
    """Memoizing, thread-safe home of all accelerator models in a run.

    Args:
        model_factory: constructor used for new accelerator models
            (:class:`~repro.core.accelerator.PIMCapsNet` by default; tests can
            substitute a stub).
        max_workers: thread-pool width used by :meth:`map`; ``1`` disables
            concurrency entirely, ``None`` picks a bounded CPU count.
        scenario: hardware scenario every model is built from (the paper
            default when ``None``).
        disk_cache: optional persistent
            :class:`~repro.engine.diskcache.SimulationCache` consulted between
            the in-memory caches and an actual simulation; hits skip model
            construction entirely, misses are written back after simulating.
        model_cache: optional persistent
            :class:`~repro.engine.diskcache.TrainedModelCache` the training
            experiments (Table 5) consult before training a functional
            CapsNet; a warm cache makes ``reproduce`` execute zero training
            steps.
    """

    def __init__(
        self,
        model_factory: Optional[Callable[..., PIMCapsNet]] = None,
        max_workers: Optional[int] = None,
        scenario: Optional["Scenario"] = None,
        disk_cache: Optional["SimulationCache"] = None,
        model_cache: Optional["TrainedModelCache"] = None,
    ) -> None:
        if scenario is None:
            # Imported lazily: repro.api.session imports this module at load time.
            from repro.api.scenario import Scenario

            scenario = Scenario.default()
        self.scenario = scenario
        #: The scenario's workload catalog (Table 1 + scenario workloads):
        #: the single name-resolution authority of this run.
        self.catalog: WorkloadCatalog = scenario.catalog
        self._factory = model_factory or PIMCapsNet
        self.disk_cache = disk_cache
        #: Persistent trained-model store (``None`` disables model caching).
        self.trained_models = model_cache
        self.max_workers = default_worker_count() if max_workers is None else max(1, max_workers)
        self._lock = threading.RLock()
        self._models: Dict[tuple, PIMCapsNet] = {}
        self._results: Dict[tuple, object] = {}
        self.stats = CacheStats()
        self.model_stats = CacheStats()

    # ------------------------------------------------------------------- models

    def model(
        self,
        benchmark: Union[str, BenchmarkConfig],
        *,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> PIMCapsNet:
        """The memoized accelerator model for one benchmark variant.

        Args:
            benchmark: catalog workload name (Table 1 or a scenario workload)
                or an explicit configuration.
            pe_frequency_mhz: override the HMC PE frequency (Fig. 18 sweeps).
            force_dimension: force the inter-vault distribution dimension
                (Fig. 18 sweeps).
        """
        config = self.benchmark_config(benchmark)
        key = self._model_key(config, pe_frequency_mhz, force_dimension)
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self.model_stats.hits += 1
                return model
            self.model_stats.misses += 1
            # The scenario supplies the hardware; under the default scenario
            # this degenerates to the bare pre-scenario constructor call (the
            # golden-report invariant, and what stub factories expect).
            kwargs = self.scenario.model_kwargs(
                pe_frequency_mhz=pe_frequency_mhz, force_dimension=force_dimension
            )
            model = self._factory(config, **kwargs)
            self._models[key] = model
            return model

    def models(self) -> List[PIMCapsNet]:
        """Every model instantiated so far."""
        with self._lock:
            return list(self._models.values())

    def benchmark_config(
        self, benchmark: Union[str, BenchmarkConfig]
    ) -> BenchmarkConfig:
        """Resolve a benchmark name through the scenario's workload catalog.

        Names are case-insensitive and cover both the Table-1 benchmarks and
        the scenario's own workloads; explicit configurations pass through
        unchanged.
        """
        if isinstance(benchmark, str):
            return self.catalog.benchmark(benchmark)
        return benchmark

    def select_benchmarks(self, benchmarks: Optional[List[str]] = None) -> List[str]:
        """Resolve the evaluated benchmarks for one experiment run.

        An explicit (non-empty) argument wins, then the scenario's own
        selection, then the whole catalog (Table 1 plus the scenario's
        workloads) -- the single fallback chain every experiment module
        shares.
        """
        if benchmarks:
            return list(benchmarks)
        selection = self.scenario.benchmark_selection()
        return selection if selection else self.catalog.names()

    def _model_key(
        self,
        benchmark: Union[str, BenchmarkConfig],
        pe_frequency_mhz: Optional[float],
        force_dimension: Optional[Dimension],
    ) -> tuple:
        # Key by the (frozen, hashable) configuration itself, not its name:
        # a custom BenchmarkConfig that shares a Table-1 name must not alias
        # the canonical benchmark's cache entries.
        return (self.benchmark_config(benchmark), pe_frequency_mhz, force_dimension)

    # ------------------------------------------------------------------ results

    def routing(
        self,
        benchmark: Union[str, BenchmarkConfig],
        design: DesignLike,
        *,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> RoutingComparison:
        """Memoized routing-procedure result for ``(benchmark, design)``."""
        return self._simulate(
            "routing", benchmark, design, pe_frequency_mhz, force_dimension
        )

    def end_to_end(
        self,
        benchmark: Union[str, BenchmarkConfig],
        design: DesignLike,
        *,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> EndToEndComparison:
        """Memoized end-to-end result for ``(benchmark, design)``."""
        return self._simulate(
            "end_to_end", benchmark, design, pe_frequency_mhz, force_dimension
        )

    def _simulate(
        self,
        kind: str,
        benchmark: Union[str, BenchmarkConfig],
        design: DesignLike,
        pe_frequency_mhz: Optional[float],
        force_dimension: Optional[Dimension],
    ):
        model_key = self._model_key(benchmark, pe_frequency_mhz, force_dimension)
        key: Tuple = (kind, model_key, design_key(design))
        with self._lock:
            cached = self._results.get(key)
            if cached is not None:
                self.stats.hits += 1
                # Private copy per caller, mirroring the model facade: cached
                # results must never be mutated through one experiment's hands
                # into another's.
                return copy.deepcopy(cached)
            self.stats.misses += 1
        # The persistent cache sits between the in-memory caches and a real
        # simulation: a hit skips model construction entirely (the point of
        # warm sweep re-runs executing zero simulations).
        config = model_key[0]
        if self.disk_cache is not None:
            persisted = self.disk_cache.get(
                self.scenario, config, kind, design, pe_frequency_mhz, force_dimension
            )
            if persisted is not None:
                with self._lock:
                    self._results.setdefault(key, copy.deepcopy(persisted))
                return persisted
        # Simulate outside the context lock so different benchmarks run
        # concurrently; concurrent lookups of the *same* key are deduplicated
        # by the model's own per-instance cache (each caller already holds a
        # private copy of the result, so keeping the first stored pristine
        # object is safe).
        model = self.model(
            benchmark,
            pe_frequency_mhz=pe_frequency_mhz,
            force_dimension=force_dimension,
        )
        if kind == "routing":
            result = model.simulate_routing(design)
        else:
            result = model.simulate_end_to_end(design)
        if self.disk_cache is not None:
            self.disk_cache.put(
                self.scenario,
                config,
                kind,
                design,
                result,
                pe_frequency_mhz=pe_frequency_mhz,
                force_dimension=force_dimension,
            )
        with self._lock:
            self._results.setdefault(key, copy.deepcopy(result))
        return result

    @property
    def simulations_executed(self) -> int:
        """Simulations actually run (model-level cache misses) so far.

        Counts every distinct ``(kind, design)`` simulation executed by any
        model owned by this context, including the nested routing simulations
        end-to-end strategies trigger; cache hits do not increment it.
        """
        with self._lock:
            return sum(model.simulations_executed for model in self._models.values())

    @property
    def disk_stats(self) -> CacheStats:
        """Hit/miss counters of the persistent cache (zeros when disabled)."""
        if self.disk_cache is None:
            return CacheStats()
        return self.disk_cache.stats

    # -------------------------------------------------------------- parallel map

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, concurrently when the pool allows it.

        Results come back in input order regardless of completion order, so
        report generation stays deterministic.  With ``max_workers == 1`` (or
        a single item) this is a plain serial loop.
        """
        items = list(items)
        if self.max_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.max_workers, len(items))) as pool:
            return list(pool.map(fn, items))
