"""Engine runner: execute any subset of experiments over a shared context.

:func:`run_experiments` resolves names against the experiment registry,
validates them (unknown names raise :class:`ValueError` -- they used to be
silently ignored by the old ``runner.run_all``), runs the selected
experiments concurrently over one shared
:class:`~repro.engine.context.SimulationContext`, and returns a
:class:`RunnerResult` whose reports always come back in registry (report)
order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, experiment_names, get_experiment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario


@dataclass
class RunnerResult:
    """Results and rendered reports of every executed experiment."""

    results: Dict[str, object] = field(default_factory=dict)
    reports: Dict[str, str] = field(default_factory=dict)
    context: Optional[SimulationContext] = None

    def combined_report(self) -> str:
        """All reports concatenated with separators."""
        sections = []
        for name, report in self.reports.items():
            sections.append(f"{'=' * 78}\n{name}\n{'=' * 78}\n{report}")
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        """Structured output of every executed experiment, in report order."""
        return {
            name: get_experiment(name).to_dict(result)
            for name, result in self.results.items()
        }


def select_experiments(
    only: Optional[List[str]] = None, skip: Optional[List[str]] = None
) -> List[str]:
    """Resolve an ``only``/``skip`` selection against the registry.

    Raises:
        ValueError: if ``only`` or ``skip`` name experiments that do not
            exist (listing the valid names).
    """
    known = experiment_names()
    _validate_names("only", only, known)
    _validate_names("skip", skip, known)
    skipped = set(skip or [])
    wanted = set(only) if only else None
    return [
        name
        for name in known
        if name not in skipped and (wanted is None or name in wanted)
    ]


def _validate_names(label: str, names: Optional[List[str]], known: List[str]) -> None:
    unknown = sorted(set(names or []) - set(known))
    if unknown:
        raise ValueError(
            f"unknown experiment name(s) in {label!r}: {unknown}; "
            f"valid names: {known}"
        )


def run_experiments(
    only: Optional[List[str]] = None,
    skip: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
    max_workers: Optional[int] = None,
    scenario: Optional["Scenario"] = None,
) -> RunnerResult:
    """Run the selected experiments over one shared simulation context.

    Args:
        only: if given, run only these experiments.
        skip: experiment names to skip.
        benchmarks: restrict every experiment to these Table-1 benchmarks
            (defaults to the scenario's own selection, then all of Table 1).
        context: shared simulation context (a fresh one by default).  Its
            ``max_workers`` also parallelizes the per-benchmark loops inside
            each experiment, and its scenario supplies the hardware.
        max_workers: pool width for the new default context (ignored when
            ``context`` is passed); ``1`` runs everything serially.
        scenario: hardware scenario for the new default context.  When
            ``context`` is also passed the two must agree -- a differing
            scenario raises :class:`ValueError` (it used to be silently
            ignored, letting callers run under the wrong hardware unnoticed).

    Raises:
        ValueError: on unknown experiment names, or when ``context`` and
            ``scenario`` disagree about the hardware.
    """
    names = select_experiments(only=only, skip=skip)
    if context is not None and scenario is not None and scenario != context.scenario:
        raise ValueError(
            f"run_experiments got both a context (scenario "
            f"{context.scenario.name!r}) and a different scenario "
            f"({scenario.name!r}); pass one of them, or a context built "
            f"from that scenario"
        )
    ctx = (
        context
        if context is not None
        else SimulationContext(max_workers=max_workers, scenario=scenario)
    )
    if benchmarks is None:
        benchmarks = ctx.scenario.benchmark_selection()
    result = RunnerResult(context=ctx)
    if not names:
        return result

    experiments: List[Experiment] = [get_experiment(name) for name in names]

    def _run_one(experiment: Experiment):
        experiment_result = experiment.run(ctx, benchmarks=benchmarks)
        return experiment_result, experiment.format_report(experiment_result)

    if ctx.max_workers <= 1 or len(experiments) == 1:
        outcomes = [_run_one(experiment) for experiment in experiments]
    else:
        with ThreadPoolExecutor(
            max_workers=min(ctx.max_workers, len(experiments))
        ) as pool:
            outcomes = list(pool.map(_run_one, experiments))

    for name, (experiment_result, report) in zip(names, outcomes):
        result.results[name] = experiment_result
        result.reports[name] = report
    if ctx.disk_cache is not None:
        # Publish buffered entries so the next process starts warm.
        ctx.disk_cache.flush()
    return result
