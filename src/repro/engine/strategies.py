"""Design-point strategy layer.

Historically :meth:`repro.core.accelerator.PIMCapsNet.simulate_routing` and
:meth:`~repro.core.accelerator.PIMCapsNet.simulate_end_to_end` were a
monolithic if/elif dispatch over :class:`~repro.core.accelerator.DesignPoint`,
so every new scenario (a scheduler policy, a mapping variant, a different
vault organization) meant editing the core model.  This module turns each
design point into a :class:`DesignPointStrategy` behind a registry:

* the built-in strategies (one per :class:`DesignPoint` member) live in
  :mod:`repro.engine.design_points` and are registered lazily on first use;
* custom scenarios register with :func:`register_strategy` and immediately
  work through the unchanged ``PIMCapsNet`` facade::

      class MyDesign(DesignPointStrategy):
          key = "my-design"

          def simulate_routing(self, model, design=None):
              ...

      register_strategy(MyDesign())
      PIMCapsNet("Caps-MN1").simulate_routing("my-design")

Registry keys are plain strings; :func:`design_key` maps both enum members
(via their ``value``) and raw strings onto them, so ``DesignPoint.PIM_CAPSNET``
and ``"pim-capsnet"`` name the same strategy.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.accelerator import EndToEndComparison, RoutingComparison

#: Anything that names a design point: an enum member or its string key.
DesignLike = Union[str, Enum]

_REGISTRY: Dict[str, "DesignPointStrategy"] = {}
_REGISTRY_LOCK = threading.RLock()
_BUILTINS_LOADED = False
_BUILTINS_LOADING = False


def design_key(design: DesignLike) -> str:
    """Canonical registry key of a design point (enum value or raw string)."""
    if isinstance(design, Enum):
        return str(design.value)
    return str(design)


def resolve_design(design: DesignLike) -> DesignLike:
    """Map a design key onto its :class:`~repro.core.accelerator.DesignPoint`.

    Keys naming a paper design point come back as the enum member (so result
    dictionaries keyed by design stay uniform); keys of custom registered
    strategies come back as their canonical string.
    """
    from repro.core.accelerator import DesignPoint  # lazy: import cycle guard

    key = design_key(design)
    try:
        return DesignPoint(key)
    except ValueError:
        return key


def resolve_designs(selection, default):
    """Resolve a scenario's design-point selection for an evaluation figure.

    ``selection`` is the optional tuple of design keys carried by a
    :class:`~repro.api.scenario.Scenario`; ``None`` keeps the figure's paper
    ``default`` list.  The GPU baseline is always evaluated first -- every
    figure normalizes its bars against it.
    """
    from repro.core.accelerator import DesignPoint  # lazy: import cycle guard

    if selection is None:
        return list(default)
    resolved = [resolve_design(design) for design in selection]
    ordered = [design for design in resolved if design is not DesignPoint.BASELINE_GPU]
    return [DesignPoint.BASELINE_GPU] + ordered


def headline_design(designs):
    """The design whose averages an evaluation report quotes.

    PIM-CapsNet when evaluated, otherwise the last (non-baseline) design of
    the selection.
    """
    from repro.core.accelerator import DesignPoint  # lazy: import cycle guard

    if DesignPoint.PIM_CAPSNET in designs:
        return DesignPoint.PIM_CAPSNET
    return designs[-1]


class DesignPointStrategy:
    """One design point's simulation recipe.

    Subclasses set :attr:`key` and override one or both of the simulation
    hooks.  The ``model`` argument is the :class:`~repro.core.accelerator.
    PIMCapsNet` facade, which exposes the substrates (``model.gpu``,
    ``model.distributor``, ``model.hmc_power``, ...) plus the shared helpers
    ``model.host_stage()``, ``model.hmc_device()`` and
    ``model.distribution_plan()``.  ``design`` is the object the caller passed
    to the facade (usually a :class:`~repro.core.accelerator.DesignPoint`
    member) and should be stored in the returned comparison so result
    dictionaries keep their original keys; it defaults to :attr:`key`.
    """

    #: Registry key (the design point's string identity).
    key: str = ""

    def simulate_routing(self, model, design: DesignLike | None = None) -> "RoutingComparison":
        """Routing-procedure time and energy for this design point."""
        raise NotImplementedError(
            f"design point {self.key!r} does not model the routing procedure"
        )

    def simulate_end_to_end(self, model, design: DesignLike | None = None) -> "EndToEndComparison":
        """Whole-inference latency and energy for this design point."""
        raise NotImplementedError(
            f"design point {self.key!r} does not model end-to-end execution"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(key={self.key!r})"


def register_strategy(
    strategy: DesignPointStrategy, *, replace: bool = False
) -> DesignPointStrategy:
    """Register a strategy under its :attr:`~DesignPointStrategy.key`.

    Args:
        strategy: the strategy instance to register.
        replace: allow overwriting an existing registration.

    Returns:
        The registered strategy (so the call composes as a decorator-ish
        one-liner: ``strategy = register_strategy(MyStrategy())``).
    """
    key = design_key(strategy.key)
    if not key:
        raise ValueError(f"{type(strategy).__name__} has no registry key")
    _ensure_builtins()
    with _REGISTRY_LOCK:
        if not replace and key in _REGISTRY:
            raise ValueError(f"a strategy is already registered for {key!r}")
        _REGISTRY[key] = strategy
    return strategy


def unregister_strategy(design: DesignLike) -> None:
    """Remove a registered strategy (mainly for tests)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(design_key(design), None)


def get_strategy(design: DesignLike) -> DesignPointStrategy:
    """Look up the strategy simulating ``design``."""
    _ensure_builtins()
    key = design_key(design)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"no strategy registered for design point {key!r}; "
            f"known design points: {strategy_names()}"
        ) from None


def strategy_names() -> List[str]:
    """Registered design-point keys, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def _ensure_builtins() -> None:
    """Load the built-in strategies exactly once.

    Deferred so that :mod:`repro.core.accelerator` (which the built-ins
    import) is fully initialized before they register.  The import happens
    under the (reentrant) registry lock so concurrent callers never observe
    a partially populated registry; the loading flag short-circuits the
    recursive :func:`register_strategy` calls the import itself makes.
    """
    global _BUILTINS_LOADED, _BUILTINS_LOADING
    if _BUILTINS_LOADED:
        return
    with _REGISTRY_LOCK:
        if _BUILTINS_LOADED or _BUILTINS_LOADING:
            return
        _BUILTINS_LOADING = True
        try:
            import repro.engine.design_points  # noqa: F401  (registers on import)

            _BUILTINS_LOADED = True
        finally:
            _BUILTINS_LOADING = False
