"""Fig. 5: pipeline-stall breakdown of the routing procedure on the GPU.

The paper profiles the contributions of memory access, barrier
synchronization, lack of resources, instruction fetch and other causes to
the pipeline stalls during RP execution; memory access (~44.6%) and
synchronization (~34.5%) dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.gpu.devices import GPUDevice
from repro.gpu.kernels import StallClass
from repro.gpu.simulator import GPUSimulator
from repro.workloads.layers_model import CapsNetWorkload


@dataclass
class StallBreakdownRow:
    """One bar of Fig. 5."""

    benchmark: str
    fractions: Dict[StallClass, float]
    alu_utilization: float
    ldst_utilization: float


@dataclass
class StallBreakdownResult:
    """All bars plus the averages the paper quotes in the text."""

    rows: List[StallBreakdownRow]
    average_memory_fraction: float
    average_sync_fraction: float
    average_alu_utilization: float
    average_ldst_utilization: float


def run(
    device: Optional[GPUDevice] = None,
    benchmarks: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
) -> StallBreakdownResult:
    """Run the Fig. 5 characterization (on the context scenario's host GPU)."""
    ctx = context or SimulationContext(max_workers=1)
    scenario = ctx.scenario
    gpu = device if device is not None else scenario.gpu
    names = ctx.select_benchmarks(benchmarks)

    def _row(name: str) -> StallBreakdownRow:
        simulator = GPUSimulator(gpu, scenario.gpu_params)
        workload = CapsNetWorkload(ctx.benchmark_config(name))
        profile = simulator.simulate_routing(workload.routing)
        return StallBreakdownRow(
            benchmark=name,
            fractions={cls: profile.stalls.fraction(cls) for cls in StallClass},
            alu_utilization=profile.alu_utilization,
            ldst_utilization=profile.ldst_utilization,
        )

    rows = ctx.map(_row, names)
    return StallBreakdownResult(
        rows=rows,
        average_memory_fraction=arithmetic_mean(
            [row.fractions[StallClass.MEMORY_ACCESS] for row in rows]
        ),
        average_sync_fraction=arithmetic_mean(
            [row.fractions[StallClass.SYNCHRONIZATION] for row in rows]
        ),
        average_alu_utilization=arithmetic_mean([row.alu_utilization for row in rows]),
        average_ldst_utilization=arithmetic_mean([row.ldst_utilization for row in rows]),
    )


def format_report(result: StallBreakdownResult) -> str:
    """Render the Fig. 5 rows as a table."""
    headers = ["Benchmark"] + [cls.value for cls in StallClass] + ["ALU util", "LDST util"]
    rows = [
        [row.benchmark]
        + [row.fractions[cls] for cls in StallClass]
        + [row.alu_utilization, row.ldst_utilization]
        for row in result.rows
    ]
    table = format_table(headers, rows, title="Fig. 5 -- RP pipeline stall breakdown on the GPU")
    return (
        f"{table}\n"
        f"Average memory-access stall share: {100.0 * result.average_memory_fraction:.2f}% (paper: 44.64%)\n"
        f"Average synchronization stall share: {100.0 * result.average_sync_fraction:.2f}% (paper: 34.45%)"
    )


@register_experiment
class Fig05Experiment(Experiment):
    """Fig. 5 -- RP pipeline-stall breakdown on the GPU."""

    name = "fig05"
    title = "Fig. 5 -- RP pipeline stall breakdown on the GPU"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
