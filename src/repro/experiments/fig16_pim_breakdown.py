"""Fig. 16: effectiveness of the intra-vault and inter-vault designs.

The paper compares three PIM design points on the RP alone:

* **PIM-Intra** -- intra-vault design only: inter-vault communication
  (crossbar) dominates (~45% of its time), still ~1.22x over the baseline.
* **PIM-Inter** -- inter-vault design only: vault request stalls from bank
  conflicts dominate (~58% of its time), ending slightly slower than the
  GPU baseline.
* **PIM-CapsNet** -- both levels: little crossbar time and few stalls.

Fig. 16(b) plots the corresponding energy, split into execution (PEs), DRAM,
crossbar and vault (controllers + static) energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment

#: PIM design points plotted by Fig. 16.
FIG16_DESIGNS = [DesignPoint.PIM_INTRA, DesignPoint.PIM_INTER, DesignPoint.PIM_CAPSNET]


@dataclass
class PIMBreakdownRow:
    """One benchmark's time/energy decomposition per PIM design point."""

    benchmark: str
    normalized_time: Dict[DesignPoint, Dict[str, float]]
    normalized_energy: Dict[DesignPoint, Dict[str, float]]


@dataclass
class PIMBreakdownResult:
    """All benchmarks plus the averages discussed in the paper's text."""

    rows: List[PIMBreakdownRow]
    average_intra_crossbar_share: float
    average_inter_vrs_share: float
    average_speedup_over_intra: float
    average_speedup_over_inter: float


def run(
    benchmarks: Optional[List[str]] = None, context: Optional[SimulationContext] = None
) -> PIMBreakdownResult:
    """Run the Fig. 16 comparison (times normalized to the GPU baseline).

    The hardware comes from the context scenario; the design points stay
    fixed (the breakdown components are specific to these three designs).
    """
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)

    def _one(name: str):
        baseline = ctx.routing(name, DesignPoint.BASELINE_GPU)
        results = {design: ctx.routing(name, design) for design in FIG16_DESIGNS}
        normalized_time: Dict[DesignPoint, Dict[str, float]] = {}
        normalized_energy: Dict[DesignPoint, Dict[str, float]] = {}
        for design, result in results.items():
            normalized_time[design] = {
                component: value / baseline.time_seconds
                for component, value in result.time_components.items()
            }
            normalized_energy[design] = {
                component: value / baseline.energy_joules
                for component, value in result.energy_components.items()
            }
        row = PIMBreakdownRow(
            benchmark=name,
            normalized_time=normalized_time,
            normalized_energy=normalized_energy,
        )
        intra = results[DesignPoint.PIM_INTRA]
        inter = results[DesignPoint.PIM_INTER]
        pim = results[DesignPoint.PIM_CAPSNET]
        return (
            row,
            intra.time_components["xbar"] / intra.time_seconds,
            inter.time_components["vrs"] / inter.time_seconds,
            intra.time_seconds / pim.time_seconds,
            inter.time_seconds / pim.time_seconds,
        )

    outcomes = ctx.map(_one, names)
    rows = [outcome[0] for outcome in outcomes]
    intra_shares = [outcome[1] for outcome in outcomes]
    inter_shares = [outcome[2] for outcome in outcomes]
    speedup_vs_intra = [outcome[3] for outcome in outcomes]
    speedup_vs_inter = [outcome[4] for outcome in outcomes]
    return PIMBreakdownResult(
        rows=rows,
        average_intra_crossbar_share=arithmetic_mean(intra_shares),
        average_inter_vrs_share=arithmetic_mean(inter_shares),
        average_speedup_over_intra=arithmetic_mean(speedup_vs_intra),
        average_speedup_over_inter=arithmetic_mean(speedup_vs_inter),
    )


def format_report(result: PIMBreakdownResult) -> str:
    """Render the Fig. 16 stacked bars (normalized to the GPU baseline)."""
    time_rows = []
    energy_rows = []
    for row in result.rows:
        for design in FIG16_DESIGNS:
            time = row.normalized_time[design]
            time_rows.append(
                [
                    row.benchmark,
                    design.value,
                    time.get("execution", 0.0),
                    time.get("xbar", 0.0),
                    time.get("vrs", 0.0),
                    sum(time.values()),
                ]
            )
            energy = row.normalized_energy[design]
            energy_rows.append(
                [
                    row.benchmark,
                    design.value,
                    energy.get("execution", 0.0),
                    energy.get("dram", 0.0),
                    energy.get("crossbar", 0.0),
                    energy.get("vault", 0.0),
                    sum(energy.values()),
                ]
            )
    time_table = format_table(
        headers=["Benchmark", "Design", "Execution", "X-bar", "VRS", "Total"],
        rows=time_rows,
        title="Fig. 16(a) -- RP time breakdown normalized to the GPU baseline",
    )
    energy_table = format_table(
        headers=["Benchmark", "Design", "Execution", "DRAM", "XBAR", "Vault", "Total"],
        rows=energy_rows,
        title="Fig. 16(b) -- RP energy breakdown normalized to the GPU baseline",
    )
    return (
        f"{time_table}\n\n{energy_table}\n"
        f"Average crossbar share of PIM-Intra time: "
        f"{100.0 * result.average_intra_crossbar_share:.1f}% (paper: 45.24%)\n"
        f"Average VRS share of PIM-Inter time: "
        f"{100.0 * result.average_inter_vrs_share:.1f}% (paper: 57.91%)\n"
        f"PIM-CapsNet speedup over PIM-Intra / PIM-Inter: "
        f"{result.average_speedup_over_intra:.2f}x / {result.average_speedup_over_inter:.2f}x "
        f"(paper: 1.77x / 2.28x)"
    )


@register_experiment
class Fig16Experiment(Experiment):
    """Fig. 16 -- effectiveness of the intra-vault and inter-vault designs."""

    name = "fig16"
    title = "Fig. 16 -- RP time/energy breakdown of the PIM design points"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
