"""Sec. 6.5 overhead analysis: logic area, power and thermal headroom.

The paper reports that the added PIM logic (16 PEs per vault, the per-vault
operation controllers and one RMAS module) occupies ~3.11 mm^2 (~0.32% of
the HMC logic die) and draws ~2.24 W on average, well within the ~10 W
thermal headroom of logic added to a 3D memory stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.engine.experiment import Experiment, register_experiment
from repro.hmc.config import HMCConfig
from repro.hmc.power import HMCPowerModel, LogicAreaModel
from repro.hmc.thermal import ThermalModel, ThermalReport


@dataclass
class OverheadResult:
    """Area, power and thermal summary of the added PIM logic."""

    total_area_mm2: float
    area_fraction: float
    average_logic_power_watts: float
    thermal_reports: List[Tuple[float, ThermalReport]]
    max_frequency_mhz: float


def run(
    config: Optional[HMCConfig] = None,
    frequencies_mhz: Tuple[float, ...] = (312.5, 625.0, 937.5),
) -> OverheadResult:
    """Run the overhead analysis."""
    config = config or HMCConfig()
    area = LogicAreaModel(config=config)
    power = HMCPowerModel(config=config)
    thermal = ThermalModel(config=config)
    reports = [(freq, thermal.check(freq)) for freq in frequencies_mhz]
    return OverheadResult(
        total_area_mm2=area.total_area_mm2,
        area_fraction=area.area_fraction,
        average_logic_power_watts=power.total_logic_power,
        thermal_reports=reports,
        max_frequency_mhz=thermal.max_frequency_mhz(),
    )


def format_report(result: OverheadResult) -> str:
    """Render the Sec. 6.5 overhead summary."""
    thermal_table = format_table(
        headers=["PE frequency (MHz)", "Logic power (W)", "Budget (W)", "Within budget"],
        rows=[
            [freq, report.logic_power_watts, report.budget_watts, report.within_budget]
            for freq, report in result.thermal_reports
        ],
        title="Thermal headroom check",
    )
    return (
        f"Added logic area: {result.total_area_mm2:.2f} mm^2 (paper: 3.11 mm^2), "
        f"{100.0 * result.area_fraction:.2f}% of the logic die (paper: 0.32%)\n"
        f"Average added logic power: {result.average_logic_power_watts:.2f} W (paper: 2.24 W)\n"
        f"{thermal_table}\n"
        f"Maximum PE frequency within the thermal budget: {result.max_frequency_mhz:.0f} MHz"
    )


@register_experiment
class OverheadExperiment(Experiment):
    """Sec. 6.5 -- area, power and thermal overhead of the added PIM logic."""

    name = "overhead"
    title = "Sec. 6.5 -- PIM logic area / power / thermal overhead"

    def run(self, context, benchmarks=None):
        return run(config=context.scenario.hmc)

    def format_report(self, result):
        return format_report(result)
