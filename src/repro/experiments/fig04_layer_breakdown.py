"""Fig. 4: per-layer execution time breakdown of CapsNet inference on the GPU.

The paper stacks the time of the Conv layer, the L-Caps (PrimaryCaps) layer,
the H-Caps layer (the routing procedure) and the FC decoder for every
benchmark, and overlays the absolute inference time.  The headline number is
that the routing procedure accounts for ~74.6% of the inference time on
average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.gpu.devices import GPUDevice
from repro.gpu.simulator import GPUSimulator
from repro.workloads.layers_model import CapsNetWorkload, LayerKind


@dataclass
class LayerBreakdownRow:
    """One bar of Fig. 4."""

    benchmark: str
    total_time_s: float
    fraction_conv: float
    fraction_primary_caps: float
    fraction_routing: float
    fraction_fc: float

    def as_tuple(self) -> tuple:
        return (
            self.benchmark,
            self.total_time_s,
            self.fraction_conv,
            self.fraction_primary_caps,
            self.fraction_routing,
            self.fraction_fc,
        )


@dataclass
class LayerBreakdownResult:
    """All bars plus the headline average routing share."""

    rows: List[LayerBreakdownRow]
    average_routing_fraction: float


def run(
    device: Optional[GPUDevice] = None,
    benchmarks: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
) -> LayerBreakdownResult:
    """Run the Fig. 4 characterization.

    Args:
        device: GPU model (the context scenario's host GPU by default).
        benchmarks: benchmark names (the scenario's selection, then all of
            Table 1, by default).
        context: engine context supplying the scenario and the thread pool
            (paper-default scenario, serial, when omitted).
    """
    ctx = context or SimulationContext(max_workers=1)
    scenario = ctx.scenario
    gpu = device if device is not None else scenario.gpu
    names = ctx.select_benchmarks(benchmarks)

    def _row(name: str) -> LayerBreakdownRow:
        simulator = GPUSimulator(gpu, scenario.gpu_params)
        workload = CapsNetWorkload(ctx.benchmark_config(name))
        timing = simulator.simulate(workload)
        fractions: Dict[LayerKind, float] = timing.fraction_by_kind()
        return LayerBreakdownRow(
            benchmark=name,
            total_time_s=timing.total_time,
            fraction_conv=fractions[LayerKind.CONV],
            fraction_primary_caps=fractions[LayerKind.PRIMARY_CAPS],
            fraction_routing=fractions[LayerKind.ROUTING],
            fraction_fc=fractions[LayerKind.FULLY_CONNECTED],
        )

    rows = ctx.map(_row, names)
    average = arithmetic_mean([row.fraction_routing for row in rows])
    return LayerBreakdownResult(rows=rows, average_routing_fraction=average)


def format_report(result: LayerBreakdownResult) -> str:
    """Render the Fig. 4 rows as a table."""
    table = format_table(
        headers=["Benchmark", "Total (s)", "Conv", "L Caps", "H Caps (RP)", "FC"],
        rows=[row.as_tuple() for row in result.rows],
        title="Fig. 4 -- CapsNet inference time breakdown on the GPU",
    )
    return (
        f"{table}\n"
        f"Average routing-procedure share: {100.0 * result.average_routing_fraction:.2f}% "
        f"(paper: 74.62%)"
    )


@register_experiment
class Fig04Experiment(Experiment):
    """Fig. 4 -- per-layer execution time breakdown on the GPU."""

    name = "fig04"
    title = "Fig. 4 -- CapsNet inference time breakdown on the GPU"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
