"""Fig. 15: routing-procedure speedup and energy of PIM-CapsNet.

The paper compares the RP execution of the GPU baseline, the GPU with an
ideal cache replacement policy (GPU-ICP) and PIM-CapsNet: PIM-CapsNet is
~2.17x faster on average and saves ~92% of the RP energy, while GPU-ICP
barely helps (~1% on both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.engine.strategies import design_key, headline_design, resolve_designs

#: Design points plotted by Fig. 15 (the paper default; a scenario's
#: ``designs`` selection replaces the non-baseline entries).
FIG15_DESIGNS = [DesignPoint.BASELINE_GPU, DesignPoint.GPU_ICP, DesignPoint.PIM_CAPSNET]

DesignLike = Union[DesignPoint, str]


@dataclass
class RPAccelerationRow:
    """One benchmark's bars (speedup and normalized energy)."""

    benchmark: str
    speedup: Dict[DesignLike, float]
    normalized_energy: Dict[DesignLike, float]
    chosen_dimension: str


@dataclass
class RPAccelerationResult:
    """All benchmarks plus the headline averages."""

    rows: List[RPAccelerationRow]
    average_speedup: float
    max_speedup: float
    average_energy_saving: float
    designs: List[DesignLike] = field(default_factory=lambda: list(FIG15_DESIGNS))


def run(
    benchmarks: Optional[List[str]] = None, context: Optional[SimulationContext] = None
) -> RPAccelerationResult:
    """Run the Fig. 15 comparison.

    Args:
        benchmarks: benchmark names (the scenario's selection, then all of
            Table 1, by default).
        context: shared simulation context (a private serial one by default);
            its scenario supplies the hardware and the optional design-point
            selection, and routing results already computed by other
            experiments are reused.
    """
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)
    designs = resolve_designs(ctx.scenario.designs, FIG15_DESIGNS)
    headline = headline_design(designs)

    def _row(name: str) -> RPAccelerationRow:
        results = {design: ctx.routing(name, design) for design in designs}
        baseline = results[DesignPoint.BASELINE_GPU]
        chosen = results[headline].dimension
        return RPAccelerationRow(
            benchmark=name,
            speedup={
                design: result.speedup_over(baseline) for design, result in results.items()
            },
            normalized_energy={
                design: result.energy_joules / baseline.energy_joules
                for design, result in results.items()
            },
            chosen_dimension=chosen.value if chosen else "-",
        )

    rows = ctx.map(_row, names)
    pim_speedups = [row.speedup[headline] for row in rows]
    pim_savings = [1.0 - row.normalized_energy[headline] for row in rows]
    return RPAccelerationResult(
        rows=rows,
        average_speedup=arithmetic_mean(pim_speedups),
        max_speedup=max(pim_speedups),
        average_energy_saving=arithmetic_mean(pim_savings),
        designs=designs,
    )


def format_report(result: RPAccelerationResult) -> str:
    """Render the Fig. 15 bars."""
    if result.designs == FIG15_DESIGNS:
        # Paper default: the classic (golden) three-column layout.
        table = format_table(
            headers=[
                "Benchmark",
                "Baseline",
                "GPU-ICP speedup",
                "PIM-CapsNet speedup",
                "PIM energy (norm.)",
                "dimension",
            ],
            rows=[
                [
                    row.benchmark,
                    row.speedup[DesignPoint.BASELINE_GPU],
                    row.speedup[DesignPoint.GPU_ICP],
                    row.speedup[DesignPoint.PIM_CAPSNET],
                    row.normalized_energy[DesignPoint.PIM_CAPSNET],
                    row.chosen_dimension,
                ]
                for row in result.rows
            ],
            title="Fig. 15 -- RP speedup and normalized energy",
        )
        label = "PIM-CapsNet"
    else:
        # Scenario design-point selection: one speedup/energy column pair per
        # evaluated design.
        label = design_key(headline_design(result.designs))
        table = format_table(
            headers=["Benchmark"]
            + [f"{design_key(design)} speedup" for design in result.designs]
            + [f"{design_key(design)} energy" for design in result.designs]
            + ["dimension"],
            rows=[
                [row.benchmark]
                + [row.speedup[design] for design in result.designs]
                + [row.normalized_energy[design] for design in result.designs]
                + [row.chosen_dimension]
                for row in result.rows
            ],
            title="Fig. 15 -- RP speedup and normalized energy",
        )
    return (
        f"{table}\n"
        f"Average {label} RP speedup: {result.average_speedup:.2f}x "
        f"(paper: 2.17x, up to 2.27x; measured max {result.max_speedup:.2f}x)\n"
        f"Average {label} RP energy saving: {100.0 * result.average_energy_saving:.2f}% "
        f"(paper: 92.18%)"
    )


@register_experiment
class Fig15Experiment(Experiment):
    """Fig. 15 -- routing-procedure speedup and energy of PIM-CapsNet."""

    name = "fig15"
    title = "Fig. 15 -- RP speedup and normalized energy"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
