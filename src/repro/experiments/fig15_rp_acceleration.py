"""Fig. 15: routing-procedure speedup and energy of PIM-CapsNet.

The paper compares the RP execution of the GPU baseline, the GPU with an
ideal cache replacement policy (GPU-ICP) and PIM-CapsNet: PIM-CapsNet is
~2.17x faster on average and saves ~92% of the RP energy, while GPU-ICP
barely helps (~1% on both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.workloads.benchmarks import BENCHMARKS

#: Design points plotted by Fig. 15.
FIG15_DESIGNS = [DesignPoint.BASELINE_GPU, DesignPoint.GPU_ICP, DesignPoint.PIM_CAPSNET]


@dataclass
class RPAccelerationRow:
    """One benchmark's bars (speedup and normalized energy)."""

    benchmark: str
    speedup: Dict[DesignPoint, float]
    normalized_energy: Dict[DesignPoint, float]
    chosen_dimension: str


@dataclass
class RPAccelerationResult:
    """All benchmarks plus the headline averages."""

    rows: List[RPAccelerationRow]
    average_speedup: float
    max_speedup: float
    average_energy_saving: float


def run(
    benchmarks: Optional[List[str]] = None, context: Optional[SimulationContext] = None
) -> RPAccelerationResult:
    """Run the Fig. 15 comparison.

    Args:
        benchmarks: benchmark names (all of Table 1 by default).
        context: shared simulation context (a private serial one by default);
            routing results already computed by other experiments are reused.
    """
    ctx = context or SimulationContext(max_workers=1)
    names = benchmarks or list(BENCHMARKS)

    def _row(name: str) -> RPAccelerationRow:
        results = {design: ctx.routing(name, design) for design in FIG15_DESIGNS}
        baseline = results[DesignPoint.BASELINE_GPU]
        return RPAccelerationRow(
            benchmark=name,
            speedup={
                design: result.speedup_over(baseline) for design, result in results.items()
            },
            normalized_energy={
                design: result.energy_joules / baseline.energy_joules
                for design, result in results.items()
            },
            chosen_dimension=(
                results[DesignPoint.PIM_CAPSNET].dimension.value
                if results[DesignPoint.PIM_CAPSNET].dimension
                else "-"
            ),
        )

    rows = ctx.map(_row, names)
    pim_speedups = [row.speedup[DesignPoint.PIM_CAPSNET] for row in rows]
    pim_savings = [1.0 - row.normalized_energy[DesignPoint.PIM_CAPSNET] for row in rows]
    return RPAccelerationResult(
        rows=rows,
        average_speedup=arithmetic_mean(pim_speedups),
        max_speedup=max(pim_speedups),
        average_energy_saving=arithmetic_mean(pim_savings),
    )


def format_report(result: RPAccelerationResult) -> str:
    """Render the Fig. 15 bars."""
    table = format_table(
        headers=[
            "Benchmark",
            "Baseline",
            "GPU-ICP speedup",
            "PIM-CapsNet speedup",
            "PIM energy (norm.)",
            "dimension",
        ],
        rows=[
            [
                row.benchmark,
                row.speedup[DesignPoint.BASELINE_GPU],
                row.speedup[DesignPoint.GPU_ICP],
                row.speedup[DesignPoint.PIM_CAPSNET],
                row.normalized_energy[DesignPoint.PIM_CAPSNET],
                row.chosen_dimension,
            ]
            for row in result.rows
        ],
        title="Fig. 15 -- RP speedup and normalized energy",
    )
    return (
        f"{table}\n"
        f"Average PIM-CapsNet RP speedup: {result.average_speedup:.2f}x "
        f"(paper: 2.17x, up to 2.27x; measured max {result.max_speedup:.2f}x)\n"
        f"Average PIM-CapsNet RP energy saving: {100.0 * result.average_energy_saving:.2f}% "
        f"(paper: 92.18%)"
    )


@register_experiment
class Fig15Experiment(Experiment):
    """Fig. 15 -- routing-procedure speedup and energy of PIM-CapsNet."""

    name = "fig15"
    title = "Fig. 15 -- RP speedup and normalized energy"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
