"""Experiment drivers reproducing every evaluation figure/table of the paper.

Each module exposes a ``run()`` function returning a structured result and a
``format_report()`` function rendering it as the rows/series the paper
reports.  The mapping to the paper is:

=========================================  =====================================
:mod:`repro.experiments.fig04_layer_breakdown`   Fig. 4  (layer time breakdown)
:mod:`repro.experiments.fig05_stall_breakdown`   Fig. 5  (RP pipeline stalls)
:mod:`repro.experiments.fig06_onchip_storage`    Fig. 6  (intermediates vs. on-chip storage)
:mod:`repro.experiments.fig07_bandwidth`         Fig. 7  (memory bandwidth sensitivity)
:mod:`repro.experiments.fig15_rp_acceleration`   Fig. 15 (RP speedup & energy)
:mod:`repro.experiments.fig16_pim_breakdown`     Fig. 16 (PIM design-point breakdown)
:mod:`repro.experiments.fig17_end_to_end`        Fig. 17 (end-to-end speedup & energy)
:mod:`repro.experiments.fig18_frequency_sweep`   Fig. 18 (distribution dim. vs. PE frequency)
:mod:`repro.experiments.table05_accuracy`        Table 5 (approximation accuracy)
:mod:`repro.experiments.overhead`                Sec. 6.5 (area / power / thermal overhead)
:mod:`repro.experiments.runner`                  runs everything
=========================================  =====================================
"""

__all__ = [
    "fig04_layer_breakdown",
    "fig05_stall_breakdown",
    "fig06_onchip_storage",
    "fig07_bandwidth",
    "fig15_rp_acceleration",
    "fig16_pim_breakdown",
    "fig17_end_to_end",
    "fig18_frequency_sweep",
    "table05_accuracy",
    "overhead",
    "runner",
]
