"""Fig. 17: end-to-end CapsNet inference speedup and energy.

The paper compares the whole-inference latency and energy of:

* the GPU baseline,
* All-in-PIM (the entire network on the HMC),
* RMAS-PIM / RMAS-GPU (pipelined execution with naive memory arbitration),
* PIM-CapsNet (pipelined execution with the runtime memory access scheduler),

reporting a 2.44x average speedup and 64.91% energy saving for PIM-CapsNet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.engine.strategies import design_key, headline_design, resolve_designs

#: Design points plotted by Fig. 17 (the paper default; a scenario's
#: ``designs`` selection replaces the non-baseline entries).
FIG17_DESIGNS = [
    DesignPoint.BASELINE_GPU,
    DesignPoint.ALL_IN_PIM,
    DesignPoint.RMAS_PIM,
    DesignPoint.RMAS_GPU,
    DesignPoint.PIM_CAPSNET,
]

DesignLike = Union[DesignPoint, str]


@dataclass
class EndToEndRow:
    """One benchmark's bars (speedup and normalized energy per design point)."""

    benchmark: str
    speedup: Dict[DesignLike, float]
    normalized_energy: Dict[DesignLike, float]


@dataclass
class EndToEndResult:
    """All benchmarks plus the headline PIM-CapsNet averages."""

    rows: List[EndToEndRow]
    average_speedup: float
    max_speedup: float
    average_energy_saving: float
    average_all_in_pim_speedup: float
    designs: List[DesignLike] = field(default_factory=lambda: list(FIG17_DESIGNS))


def run(
    benchmarks: Optional[List[str]] = None, context: Optional[SimulationContext] = None
) -> EndToEndResult:
    """Run the Fig. 17 comparison (hardware and design selection from the
    context scenario)."""
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)
    designs = resolve_designs(ctx.scenario.designs, FIG17_DESIGNS)
    headline = headline_design(designs)

    def _row(name: str) -> EndToEndRow:
        results = {design: ctx.end_to_end(name, design) for design in designs}
        baseline = results[DesignPoint.BASELINE_GPU]
        return EndToEndRow(
            benchmark=name,
            speedup={d: r.speedup_over(baseline) for d, r in results.items()},
            normalized_energy={
                d: r.energy_joules / baseline.energy_joules for d, r in results.items()
            },
        )

    rows = ctx.map(_row, names)
    pim_speedups = [row.speedup[headline] for row in rows]
    pim_savings = [1.0 - row.normalized_energy[headline] for row in rows]
    return EndToEndResult(
        rows=rows,
        average_speedup=arithmetic_mean(pim_speedups),
        max_speedup=max(pim_speedups),
        average_energy_saving=arithmetic_mean(pim_savings),
        average_all_in_pim_speedup=(
            arithmetic_mean([row.speedup[DesignPoint.ALL_IN_PIM] for row in rows])
            if DesignPoint.ALL_IN_PIM in designs
            else float("nan")
        ),
        designs=designs,
    )


def format_report(result: EndToEndResult) -> str:
    """Render the Fig. 17 bars."""
    designs = result.designs
    headline = headline_design(designs)
    label = "PIM-CapsNet" if headline is DesignPoint.PIM_CAPSNET else design_key(headline)
    speedup_table = format_table(
        headers=["Benchmark"] + [design_key(design) for design in designs],
        rows=[
            [row.benchmark] + [row.speedup[design] for design in designs]
            for row in result.rows
        ],
        title="Fig. 17(a) -- end-to-end speedup over the GPU baseline",
    )
    energy_table = format_table(
        headers=["Benchmark"] + [design_key(design) for design in designs],
        rows=[
            [row.benchmark] + [row.normalized_energy[design] for design in designs]
            for row in result.rows
        ],
        title="Fig. 17(b) -- end-to-end energy normalized to the GPU baseline",
    )
    report = (
        f"{speedup_table}\n\n{energy_table}\n"
        f"Average {label} speedup: {result.average_speedup:.2f}x "
        f"(paper: 2.44x, up to 2.76x; measured max {result.max_speedup:.2f}x)\n"
        f"Average {label} energy saving: {100.0 * result.average_energy_saving:.2f}% "
        f"(paper: 64.91%)"
    )
    if DesignPoint.ALL_IN_PIM in designs:
        report += (
            f"\nAverage All-in-PIM speedup: {result.average_all_in_pim_speedup:.2f}x "
            f"(paper: 0.52x -- see EXPERIMENTS.md for the known deviation)"
        )
    return report


@register_experiment
class Fig17Experiment(Experiment):
    """Fig. 17 -- end-to-end CapsNet inference speedup and energy."""

    name = "fig17"
    title = "Fig. 17 -- end-to-end speedup and energy"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
