"""Fig. 7: impact of off-chip memory bandwidth on RP performance.

The paper sweeps the memory technology -- GDDR5 288 GB/s, GDDR5X 484 GB/s,
GDDR6 616 GB/s, HBM2 897 GB/s -- and observes that even the 3.1x bandwidth
increase only improves the RP by ~26% on average: higher bandwidth does not
remove the intensity of the off-chip accesses, the latency-bound portion or
the synchronizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.gpu.devices import GPU_DEVICES, BANDWIDTH_SWEEP
from repro.gpu.simulator import GPUSimulator
from repro.workloads.rp_model import RoutingWorkload


@dataclass
class BandwidthRow:
    """One benchmark's normalized RP performance per memory technology."""

    benchmark: str
    normalized_performance: Dict[str, float]


@dataclass
class BandwidthResult:
    """All benchmarks plus the per-technology average."""

    rows: List[BandwidthRow]
    technologies: List[str]
    bandwidths_gbs: Dict[str, float]
    average_by_technology: Dict[str, float]


def run(
    benchmarks: Optional[List[str]] = None,
    devices: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
) -> BandwidthResult:
    """Run the Fig. 7 sweep (bandwidth only; compute and storage stay at the scenario host)."""
    ctx = context or SimulationContext(max_workers=1)
    scenario = ctx.scenario
    names = ctx.select_benchmarks(benchmarks)
    device_names = devices or list(BANDWIDTH_SWEEP)
    baseline = scenario.gpu
    technologies = [GPU_DEVICES[d].memory_technology.value for d in device_names]
    bandwidths = {
        GPU_DEVICES[d].memory_technology.value: GPU_DEVICES[d].memory_bandwidth_gbs
        for d in device_names
    }

    def _row(name: str) -> BandwidthRow:
        routing = RoutingWorkload(ctx.benchmark_config(name))
        reference_time: Optional[float] = None
        normalized: Dict[str, float] = {}
        for device_name in device_names:
            technology = GPU_DEVICES[device_name].memory_technology.value
            bandwidth = GPU_DEVICES[device_name].memory_bandwidth_gbs
            simulator = GPUSimulator(baseline.with_memory_bandwidth(bandwidth), scenario.gpu_params)
            time = simulator.simulate_routing(routing).total_time
            if reference_time is None:
                reference_time = time
            normalized[technology] = reference_time / time
        return BandwidthRow(benchmark=name, normalized_performance=normalized)

    rows = ctx.map(_row, names)
    return BandwidthResult(
        rows=rows,
        technologies=technologies,
        bandwidths_gbs=bandwidths,
        average_by_technology={
            tech: arithmetic_mean([row.normalized_performance[tech] for row in rows])
            for tech in technologies
        },
    )


def format_report(result: BandwidthResult) -> str:
    """Render the Fig. 7 series."""
    table = format_table(
        headers=["Benchmark"]
        + [f"{tech} ({result.bandwidths_gbs[tech]:.0f} GB/s)" for tech in result.technologies],
        rows=[
            [row.benchmark] + [row.normalized_performance[tech] for tech in result.technologies]
            for row in result.rows
        ],
        title="Fig. 7 -- normalized RP performance vs. memory bandwidth",
    )
    best = result.technologies[-1]
    return (
        f"{table}\n"
        f"Average RP improvement with {best}: "
        f"{result.average_by_technology[best]:.3f}x (paper: ~1.26x)"
    )


@register_experiment
class Fig07Experiment(Experiment):
    """Fig. 7 -- impact of off-chip memory bandwidth on RP performance."""

    name = "fig07"
    title = "Fig. 7 -- normalized RP performance vs. memory bandwidth"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
