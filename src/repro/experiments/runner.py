"""Run every reproduction experiment and print the combined report.

``python -m repro.experiments.runner`` regenerates the rows/series of every
evaluation figure and table of the paper.  Individual experiments can be
skipped with ``--skip`` (the accuracy experiment trains networks and is the
slowest one).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import (
    fig04_layer_breakdown,
    fig05_stall_breakdown,
    fig06_onchip_storage,
    fig07_bandwidth,
    fig15_rp_acceleration,
    fig16_pim_breakdown,
    fig17_end_to_end,
    fig18_frequency_sweep,
    overhead,
    table05_accuracy,
)

#: Experiment registry: name -> (run, format_report).
EXPERIMENTS: Dict[str, Tuple[Callable[[], object], Callable[[object], str]]] = {
    "fig04": (fig04_layer_breakdown.run, fig04_layer_breakdown.format_report),
    "fig05": (fig05_stall_breakdown.run, fig05_stall_breakdown.format_report),
    "fig06": (fig06_onchip_storage.run, fig06_onchip_storage.format_report),
    "fig07": (fig07_bandwidth.run, fig07_bandwidth.format_report),
    "fig15": (fig15_rp_acceleration.run, fig15_rp_acceleration.format_report),
    "fig16": (fig16_pim_breakdown.run, fig16_pim_breakdown.format_report),
    "fig17": (fig17_end_to_end.run, fig17_end_to_end.format_report),
    "fig18": (fig18_frequency_sweep.run, fig18_frequency_sweep.format_report),
    "table5": (table05_accuracy.run, table05_accuracy.format_report),
    "overhead": (overhead.run, overhead.format_report),
}


@dataclass
class RunnerResult:
    """Results and rendered reports of every executed experiment."""

    results: Dict[str, object] = field(default_factory=dict)
    reports: Dict[str, str] = field(default_factory=dict)

    def combined_report(self) -> str:
        """All reports concatenated with separators."""
        sections = []
        for name, report in self.reports.items():
            sections.append(f"{'=' * 78}\n{name}\n{'=' * 78}\n{report}")
        return "\n\n".join(sections)


def run_all(skip: Optional[List[str]] = None, only: Optional[List[str]] = None) -> RunnerResult:
    """Run the selected experiments.

    Args:
        skip: experiment names to skip.
        only: if given, run only these experiments.
    """
    skip = set(skip or [])
    result = RunnerResult()
    for name, (run_fn, format_fn) in EXPERIMENTS.items():
        if name in skip:
            continue
        if only and name not in only:
            continue
        experiment_result = run_fn()
        result.results[name] = experiment_result
        result.reports[name] = format_fn(experiment_result)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """Command line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip", nargs="*", default=[], choices=sorted(EXPERIMENTS))
    parser.add_argument("--only", nargs="*", default=None, choices=sorted(EXPERIMENTS))
    args = parser.parse_args(argv)
    result = run_all(skip=args.skip, only=args.only)
    print(result.combined_report())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
