"""Run every reproduction experiment and print the combined report.

``python -m repro.experiments.runner`` regenerates the rows/series of every
evaluation figure and table of the paper.  Individual experiments can be
skipped with ``--skip`` (the accuracy experiment trains networks and is the
slowest one).

This module is a thin compatibility veneer over :mod:`repro.engine`: the
experiment registry lives in :mod:`repro.engine.experiment` and the executor
in :mod:`repro.engine.runner`, which shares one
:class:`~repro.engine.context.SimulationContext` across all experiments (so
common ``(benchmark, design)`` simulations run once) and executes
independent experiments concurrently.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.context import SimulationContext
from repro.engine.experiment import experiment_names, get_experiment
from repro.engine.runner import RunnerResult, run_experiments


def _registry() -> Dict[str, Tuple[Callable[..., object], Callable[[object], str]]]:
    """The classic name -> (run, format_report) table, built from the engine."""
    table: Dict[str, Tuple[Callable[..., object], Callable[[object], str]]] = {}
    for name in experiment_names():
        experiment = get_experiment(name)
        table[name] = (experiment.run_standalone, experiment.format_report)
    return table


#: Experiment registry: name -> (run, format_report).  Kept for backwards
#: compatibility; the authoritative registry is ``repro.engine.experiment``.
EXPERIMENTS = _registry()


def run_all(
    skip: Optional[List[str]] = None,
    only: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
    max_workers: Optional[int] = None,
) -> RunnerResult:
    """Run the selected experiments over one shared simulation context.

    Args:
        skip: experiment names to skip.
        only: if given, run only these experiments.
        context: shared simulation context (a fresh one by default).
        max_workers: thread-pool width for the default context; ``1`` runs
            everything serially.

    Raises:
        ValueError: if ``skip`` or ``only`` contain unknown experiment names
            (they used to be silently ignored, running nothing).
    """
    return run_experiments(only=only, skip=skip, context=context, max_workers=max_workers)


def main(argv: Optional[List[str]] = None) -> int:
    """Command line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip", nargs="*", default=[], choices=sorted(EXPERIMENTS))
    parser.add_argument("--only", nargs="*", default=None, choices=sorted(EXPERIMENTS))
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="thread-pool width (1 = serial; default: bounded CPU count)",
    )
    args = parser.parse_args(argv)
    result = run_all(skip=args.skip, only=args.only, max_workers=args.jobs)
    print(result.combined_report())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
