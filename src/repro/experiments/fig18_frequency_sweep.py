"""Fig. 18: distribution-dimension speedup heat map vs. PE frequency.

For every benchmark and every PE frequency (312.5, 625, 937.5 MHz) the paper
plots the RP speedup obtained when forcing the inter-vault distribution onto
each of the three dimensions.  Two effects are visible: higher frequency
helps across the board, and the best dimension can change with frequency
(compute shrinks with frequency while inter-vault communication does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.workloads.parallelism import Dimension

#: PE frequencies swept by Fig. 18 (MHz).
FIG18_FREQUENCIES_MHZ = (312.5, 625.0, 937.5)


@dataclass
class FrequencySweepCell:
    """Speedup of one (benchmark, frequency, dimension) cell."""

    benchmark: str
    frequency_mhz: float
    dimension: Dimension
    speedup: float


@dataclass
class FrequencySweepResult:
    """The whole heat map plus the per-(benchmark, frequency) best dimension."""

    cells: List[FrequencySweepCell]
    best_dimension: Dict[Tuple[str, float], Dimension]
    benchmarks: List[str]
    frequencies_mhz: Tuple[float, ...]

    def speedup(self, benchmark: str, frequency_mhz: float, dimension: Dimension) -> float:
        """Look up one cell of the heat map."""
        for cell in self.cells:
            if (
                cell.benchmark == benchmark
                and cell.frequency_mhz == frequency_mhz
                and cell.dimension == dimension
            ):
                return cell.speedup
        raise KeyError((benchmark, frequency_mhz, dimension))

    def dimension_changes_with_frequency(self) -> List[str]:
        """Benchmarks whose best dimension differs across the swept frequencies."""
        changed = []
        for benchmark in self.benchmarks:
            dims = {self.best_dimension[(benchmark, f)] for f in self.frequencies_mhz}
            if len(dims) > 1:
                changed.append(benchmark)
        return changed


def run(
    benchmarks: Optional[List[str]] = None,
    frequencies_mhz: Tuple[float, ...] = FIG18_FREQUENCIES_MHZ,
    context: Optional[SimulationContext] = None,
) -> FrequencySweepResult:
    """Run the Fig. 18 sweep.

    Each swept frequency applies on top of the context scenario's HMC
    configuration (geometry, bandwidth and PE count stay scenario-defined).
    """
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)

    def _benchmark_cells(name: str):
        bench_cells: List[FrequencySweepCell] = []
        bench_best: Dict[Tuple[str, float], Dimension] = {}
        for frequency in frequencies_mhz:
            baseline = ctx.routing(
                name, DesignPoint.BASELINE_GPU, pe_frequency_mhz=frequency
            )
            best_speedup = 0.0
            for dimension in Dimension:
                result = ctx.routing(
                    name,
                    DesignPoint.PIM_CAPSNET,
                    pe_frequency_mhz=frequency,
                    force_dimension=dimension,
                )
                value = result.speedup_over(baseline)
                bench_cells.append(
                    FrequencySweepCell(
                        benchmark=name,
                        frequency_mhz=frequency,
                        dimension=dimension,
                        speedup=value,
                    )
                )
                if value > best_speedup:
                    best_speedup = value
                    bench_best[(name, frequency)] = dimension
        return bench_cells, bench_best

    cells: List[FrequencySweepCell] = []
    best: Dict[Tuple[str, float], Dimension] = {}
    for bench_cells, bench_best in ctx.map(_benchmark_cells, names):
        cells.extend(bench_cells)
        best.update(bench_best)
    return FrequencySweepResult(
        cells=cells,
        best_dimension=best,
        benchmarks=names,
        frequencies_mhz=tuple(frequencies_mhz),
    )


def format_report(result: FrequencySweepResult) -> str:
    """Render the Fig. 18 heat map as a table (one row per benchmark)."""
    headers = ["Benchmark"]
    for frequency in result.frequencies_mhz:
        for dimension in Dimension:
            headers.append(f"{frequency:.0f}MHz/{dimension.value}")
        headers.append(f"{frequency:.0f}MHz best")
    rows = []
    for benchmark in result.benchmarks:
        row: List[object] = [benchmark]
        for frequency in result.frequencies_mhz:
            for dimension in Dimension:
                row.append(result.speedup(benchmark, frequency, dimension))
            row.append(result.best_dimension[(benchmark, frequency)].value)
        rows.append(row)
    table = format_table(headers, rows, title="Fig. 18 -- RP speedup by distribution dimension and PE frequency")
    changed = result.dimension_changes_with_frequency()
    return (
        f"{table}\n"
        f"Benchmarks whose best dimension changes with frequency: "
        f"{', '.join(changed) if changed else 'none'}"
    )


@register_experiment
class Fig18Experiment(Experiment):
    """Fig. 18 -- distribution-dimension speedup vs. PE frequency."""

    name = "fig18"
    title = "Fig. 18 -- RP speedup by distribution dimension and PE frequency"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
