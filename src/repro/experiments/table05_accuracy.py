"""Table 5: CapsNet accuracy with the PE's approximate arithmetic.

The PIM-CapsNet PEs evaluate the exponential, division and inverse square
root through bit-level approximations (Sec. 5.2.2); Table 5 verifies that

* without the accuracy-recovery multiplier the approximations cost on
  average ~0.35% accuracy,
* with the recovery multiplier the accuracy essentially matches the exact
  execution (~0.04% average difference).

The paper trains the twelve Table-1 networks on their datasets; offline we
train one small CapsNet per dataset on the deterministic synthetic datasets
(see DESIGN.md for the substitution) and evaluate the *same trained weights*
under the three arithmetic contexts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.arithmetic.context import MathContext
from repro.capsnet.datasets import DatasetSpec, dataset_for_spec
from repro.capsnet.model import CapsNet, CapsNetConfig, evaluate_accuracies
from repro.capsnet.training import Trainer
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment

#: Trainer arguments the experiment overrides (everything else stays at the
#: :class:`~repro.capsnet.training.Trainer` defaults).  The cache key derives
#: the full hyper-parameter set from these plus the dataclass defaults, so a
#: change in either place changes the key -- no duplicated literals to drift.
TRAINER_KWARGS = {
    "learning_rate": 0.002,
    "optimizer": "adam",
    "reconstruction_weight": 0.0,
}

#: Trainer fields that shape the trained weights (part of the cache key).
_HYPERPARAM_FIELDS = (
    "learning_rate",
    "momentum",
    "optimizer",
    "reconstruction_weight",
    "grad_clip",
    "adam_beta1",
    "adam_beta2",
    "adam_epsilon",
)


def _trainer_hyperparams() -> dict:
    """The resolved trainer hyper-parameters (defaults + experiment overrides)."""
    defaults = {
        field.name: field.default
        for field in dataclasses.fields(Trainer)
        if field.name in _HYPERPARAM_FIELDS
    }
    return {**defaults, **TRAINER_KWARGS}


def _context_schema(context: MathContext) -> dict:
    """Canonical description of one evaluated arithmetic context.

    Derived from the live :class:`~repro.arithmetic.context.MathContext`
    (not hardcoded), so changing the PE approximations, the Newton depth or
    the recovery calibration automatically invalidates cached accuracies.
    """
    payload: dict = {
        "name": context.name,
        "use_approximations": context.use_approximations,
        "newton_steps": context.newton_steps,
    }
    if context.exp_recovery is not None:
        payload["recovery"] = {
            "scale": context.exp_recovery.scale,
            "mean_relative_error": context.exp_recovery.mean_relative_error,
            "samples": context.exp_recovery.samples,
        }
    return payload


@dataclass
class AccuracyRow:
    """One column group of Table 5."""

    benchmark: str
    dataset: str
    origin_accuracy: float
    approx_accuracy: float
    recovered_accuracy: float

    @property
    def loss_without_recovery(self) -> float:
        """Accuracy drop of the approximation without recovery."""
        return self.origin_accuracy - self.approx_accuracy

    @property
    def loss_with_recovery(self) -> float:
        """Accuracy drop (absolute difference) with the recovery multiplier."""
        return abs(self.origin_accuracy - self.recovered_accuracy)


@dataclass
class AccuracyResult:
    """All rows plus the average losses the paper quotes."""

    rows: List[AccuracyRow]
    average_loss_without_recovery: float
    average_loss_with_recovery: float


def _scaled_config_for(dataset_name: str, num_classes: int, image_shape) -> CapsNetConfig:
    """A small CapsNet preserving the paper's layer structure for one dataset."""
    return CapsNetConfig(
        input_shape=image_shape,
        num_classes=num_classes,
        conv_channels=24,
        conv_kernel=9,
        conv_stride=1,
        primary_channels=2,
        primary_dim=8,
        primary_kernel=9,
        primary_stride=2,
        class_caps_dim=16,
        routing_iterations=3,
        use_decoder=False,
    )


def training_cache_key(
    spec: DatasetSpec,
    model_config: CapsNetConfig,
    epochs: int,
    num_train: int,
    num_test: int,
    seed: int,
    eval_contexts: Dict[str, MathContext],
) -> dict:
    """The canonical trained-model cache key payload for one dataset.

    Covers everything that determines the trained weights *and* the measured
    accuracies: the dataset spec and split sizes, the network architecture,
    the trainer hyper-parameters (resolved from the live Trainer defaults,
    not duplicated literals), the shared seed, and the schema of the
    evaluated arithmetic contexts.  Any change misses (the cache retrains).
    """
    return {
        "experiment": "table5",
        "dataset": spec.content_hash(),
        "splits": {"num_train": num_train, "num_test": num_test},
        "model": dataclasses.asdict(model_config),
        "trainer": _trainer_hyperparams(),
        "fit": {"epochs": epochs, "batch_size": 16},
        "seed": seed,
        "arithmetic": {
            label: _context_schema(context) for label, context in eval_contexts.items()
        },
    }


def run(
    benchmarks: Optional[List[str]] = None,
    epochs: int = 4,
    num_train: int = 320,
    num_test: int = 160,
    seed: int = 3,
    context: Optional[SimulationContext] = None,
) -> AccuracyResult:
    """Run the Table 5 accuracy comparison.

    ``context`` is accepted for engine uniformity; training is kept serial
    (the per-dataset weight sharing below is order-dependent).  When the
    context carries a :class:`~repro.engine.diskcache.TrainedModelCache`,
    trained weights and per-context accuracies are persisted under a
    content-addressed key, so a warm run executes *zero* training steps and
    renders a byte-identical table.

    Training happens once per distinct dataset *spec* (not name, so a custom
    workload whose inline dataset reuses a Table-1 name cannot alias the
    canonical dataset's trained weights); every benchmark sharing that
    dataset reuses the trained weights and accuracies (the benchmarks of a
    dataset family only differ in batch size / capsule counts, which do not
    change the accuracy comparison being made).  ``num_train`` / ``num_test``
    are per-dataset floors; datasets with many classes get at least eight
    training and four test samples per class.

    The accuracy comparison is hardware-insensitive: only the scenario's
    benchmark selection (taken from ``context`` when given) affects it.
    """
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)
    model_cache = ctx.trained_models
    # Built once: every context is deterministic, and re-running the
    # recovery calibration per benchmark row was pure waste.
    eval_contexts = {
        "origin": MathContext.exact(),
        "approx": MathContext.approximate(),
        "recovered": MathContext.approximate_with_recovery(),
    }
    accuracies_by_spec: Dict[DatasetSpec, Dict[str, float]] = {}
    rows: List[AccuracyRow] = []

    for name in names:
        config = ctx.benchmark_config(name)
        dataset_name = config.dataset
        spec = config.dataset_spec
        accuracies = accuracies_by_spec.get(spec)
        if accuracies is None:
            num_classes = spec.num_classes
            n_train = max(num_train, 8 * num_classes)
            n_test = max(num_test, 4 * num_classes)
            model_config = _scaled_config_for(dataset_name, num_classes, spec.image_shape)
            cache_key = training_cache_key(
                spec, model_config, epochs, n_train, n_test, seed, eval_contexts
            )
            artifact = model_cache.get(cache_key) if model_cache is not None else None
            if artifact is not None:
                accuracies = artifact.accuracies
            else:
                dataset = dataset_for_spec(
                    spec, num_train=n_train, num_test=n_test, seed=seed
                )
                model = CapsNet(model_config, context=MathContext.exact(), seed=seed)
                trainer = Trainer(model, seed=seed, **TRAINER_KWARGS)
                # The experiment evaluates below (sharing the conv trunk
                # across contexts), so fit's own train/test evaluation
                # passes would be dead work.
                trainer.fit(dataset, epochs=epochs, batch_size=16, evaluate=False)
                test_images, test_labels = dataset.test_set()
                eval_models = {
                    label: model.with_context(math_context)
                    for label, math_context in eval_contexts.items()
                }
                accuracies = evaluate_accuracies(eval_models, test_images, test_labels)
                if model_cache is not None:
                    model_cache.put(
                        cache_key, state=model.state_dict(), accuracies=accuracies
                    )
            accuracies_by_spec[spec] = accuracies

        rows.append(
            AccuracyRow(
                benchmark=name,
                dataset=dataset_name,
                origin_accuracy=accuracies["origin"],
                approx_accuracy=accuracies["approx"],
                recovered_accuracy=accuracies["recovered"],
            )
        )

    return AccuracyResult(
        rows=rows,
        average_loss_without_recovery=arithmetic_mean(
            [row.loss_without_recovery for row in rows]
        ),
        average_loss_with_recovery=arithmetic_mean([row.loss_with_recovery for row in rows]),
    )


def format_report(result: AccuracyResult) -> str:
    """Render Table 5."""
    table = format_table(
        headers=["Benchmark", "Dataset", "Origin", "w/o recovery", "w/ recovery"],
        rows=[
            [
                row.benchmark,
                row.dataset,
                row.origin_accuracy,
                row.approx_accuracy,
                row.recovered_accuracy,
            ]
            for row in result.rows
        ],
        title="Table 5 -- accuracy with the PE approximations",
    )
    return (
        f"{table}\n"
        f"Average accuracy loss without recovery: "
        f"{100.0 * result.average_loss_without_recovery:.3f}% (paper: 0.35%)\n"
        f"Average accuracy difference with recovery: "
        f"{100.0 * result.average_loss_with_recovery:.3f}% (paper: 0.04%)"
    )


@register_experiment
class Table5Experiment(Experiment):
    """Table 5 -- CapsNet accuracy with the PE's approximate arithmetic."""

    name = "table5"
    title = "Table 5 -- accuracy with the PE approximations"
    slow = True

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
