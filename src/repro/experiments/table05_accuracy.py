"""Table 5: CapsNet accuracy with the PE's approximate arithmetic.

The PIM-CapsNet PEs evaluate the exponential, division and inverse square
root through bit-level approximations (Sec. 5.2.2); Table 5 verifies that

* without the accuracy-recovery multiplier the approximations cost on
  average ~0.35% accuracy,
* with the recovery multiplier the accuracy essentially matches the exact
  execution (~0.04% average difference).

The paper trains the twelve Table-1 networks on their datasets; offline we
train one small CapsNet per dataset on the deterministic synthetic datasets
(see DESIGN.md for the substitution) and evaluate the *same trained weights*
under the three arithmetic contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.arithmetic.context import MathContext
from repro.capsnet.datasets import DatasetSpec, dataset_for_spec
from repro.capsnet.model import CapsNet, CapsNetConfig
from repro.capsnet.training import Trainer
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment


@dataclass
class AccuracyRow:
    """One column group of Table 5."""

    benchmark: str
    dataset: str
    origin_accuracy: float
    approx_accuracy: float
    recovered_accuracy: float

    @property
    def loss_without_recovery(self) -> float:
        """Accuracy drop of the approximation without recovery."""
        return self.origin_accuracy - self.approx_accuracy

    @property
    def loss_with_recovery(self) -> float:
        """Accuracy drop (absolute difference) with the recovery multiplier."""
        return abs(self.origin_accuracy - self.recovered_accuracy)


@dataclass
class AccuracyResult:
    """All rows plus the average losses the paper quotes."""

    rows: List[AccuracyRow]
    average_loss_without_recovery: float
    average_loss_with_recovery: float


def _scaled_config_for(dataset_name: str, num_classes: int, image_shape) -> CapsNetConfig:
    """A small CapsNet preserving the paper's layer structure for one dataset."""
    return CapsNetConfig(
        input_shape=image_shape,
        num_classes=num_classes,
        conv_channels=24,
        conv_kernel=9,
        conv_stride=1,
        primary_channels=2,
        primary_dim=8,
        primary_kernel=9,
        primary_stride=2,
        class_caps_dim=16,
        routing_iterations=3,
        use_decoder=False,
    )


def run(
    benchmarks: Optional[List[str]] = None,
    epochs: int = 4,
    num_train: int = 320,
    num_test: int = 160,
    seed: int = 3,
    context: Optional[SimulationContext] = None,
) -> AccuracyResult:
    """Run the Table 5 accuracy comparison.

    ``context`` is accepted for engine uniformity; training is kept serial
    (the per-dataset weight sharing below is order-dependent).

    Training happens once per distinct dataset; every benchmark sharing that
    dataset reuses the trained weights (the benchmarks of a dataset family
    only differ in batch size / capsule counts, which do not change the
    accuracy comparison being made).  ``num_train`` / ``num_test`` are
    per-dataset floors; datasets with many classes get at least eight
    training and four test samples per class.

    The accuracy comparison is hardware-insensitive: only the scenario's
    benchmark selection (taken from ``context`` when given) affects it.
    """
    ctx = context or SimulationContext(max_workers=1)
    names = ctx.select_benchmarks(benchmarks)
    # Trained models / datasets are shared per dataset *spec* (not name), so
    # a custom workload whose inline dataset reuses a Table-1 name cannot
    # alias the canonical dataset's trained weights.
    trained: Dict[DatasetSpec, CapsNet] = {}
    datasets: Dict[DatasetSpec, object] = {}
    rows: List[AccuracyRow] = []

    for name in names:
        config = ctx.benchmark_config(name)
        dataset_name = config.dataset
        spec = config.dataset_spec
        if spec not in trained:
            num_classes = spec.num_classes
            dataset = dataset_for_spec(
                spec,
                num_train=max(num_train, 8 * num_classes),
                num_test=max(num_test, 4 * num_classes),
                seed=seed,
            )
            model_config = _scaled_config_for(
                dataset_name, dataset.num_classes, dataset.spec.image_shape
            )
            model = CapsNet(model_config, context=MathContext.exact(), seed=seed)
            trainer = Trainer(
                model,
                learning_rate=0.002,
                optimizer="adam",
                reconstruction_weight=0.0,
                seed=seed,
            )
            trainer.fit(dataset, epochs=epochs, batch_size=16)
            trained[spec] = model
            datasets[spec] = dataset
        model = trained[spec]
        dataset = datasets[spec]
        test_images, test_labels = dataset.test_set()
        state = model.state_dict()

        accuracies: Dict[str, float] = {}
        contexts = {
            "origin": MathContext.exact(),
            "approx": MathContext.approximate(),
            "recovered": MathContext.approximate_with_recovery(),
        }
        for label, context in contexts.items():
            eval_model = CapsNet(model.config, context=context, seed=seed)
            eval_model.load_state_dict(state)
            accuracies[label] = eval_model.accuracy(test_images, test_labels)

        rows.append(
            AccuracyRow(
                benchmark=name,
                dataset=dataset_name,
                origin_accuracy=accuracies["origin"],
                approx_accuracy=accuracies["approx"],
                recovered_accuracy=accuracies["recovered"],
            )
        )

    return AccuracyResult(
        rows=rows,
        average_loss_without_recovery=arithmetic_mean(
            [row.loss_without_recovery for row in rows]
        ),
        average_loss_with_recovery=arithmetic_mean([row.loss_with_recovery for row in rows]),
    )


def format_report(result: AccuracyResult) -> str:
    """Render Table 5."""
    table = format_table(
        headers=["Benchmark", "Dataset", "Origin", "w/o recovery", "w/ recovery"],
        rows=[
            [
                row.benchmark,
                row.dataset,
                row.origin_accuracy,
                row.approx_accuracy,
                row.recovered_accuracy,
            ]
            for row in result.rows
        ],
        title="Table 5 -- accuracy with the PE approximations",
    )
    return (
        f"{table}\n"
        f"Average accuracy loss without recovery: "
        f"{100.0 * result.average_loss_without_recovery:.3f}% (paper: 0.35%)\n"
        f"Average accuracy difference with recovery: "
        f"{100.0 * result.average_loss_with_recovery:.3f}% (paper: 0.04%)"
    )


@register_experiment
class Table5Experiment(Experiment):
    """Table 5 -- CapsNet accuracy with the PE's approximate arithmetic."""

    name = "table5"
    title = "Table 5 -- accuracy with the PE approximations"
    slow = True

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
