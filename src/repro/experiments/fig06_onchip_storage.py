"""Fig. 6: routing intermediates vs. GPU on-chip storage.

* Fig. 6(a): the ratio of the RP's non-shareable intermediate variables to
  the on-chip storage of four GPU generations (K40m 1.73 MB, P100 5.31 MB,
  RTX 2080Ti 9.75 MB, V100 16 MB) -- the intermediates exceed on-chip
  storage by 40x-300x.
* Fig. 6(b): the RP performance obtained by only scaling the on-chip storage
  to those sizes -- at most ~1.14x, because the dominant prediction vectors
  still do not fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.engine.context import SimulationContext
from repro.engine.experiment import Experiment, register_experiment
from repro.gpu.devices import GPU_DEVICES, ONCHIP_STORAGE_SWEEP
from repro.gpu.simulator import GPUSimulator
from repro.workloads.rp_model import RoutingWorkload


@dataclass
class OnChipStorageRow:
    """One benchmark's ratios (Fig. 6a) and normalized performance (Fig. 6b)."""

    benchmark: str
    intermediate_bytes: int
    ratio_by_device: Dict[str, float]
    normalized_performance_by_device: Dict[str, float]


@dataclass
class OnChipStorageResult:
    """All benchmarks plus per-device averages."""

    rows: List[OnChipStorageRow]
    devices: List[str]
    average_ratio_by_device: Dict[str, float]
    average_performance_by_device: Dict[str, float]


def run(
    benchmarks: Optional[List[str]] = None,
    devices: Optional[List[str]] = None,
    context: Optional[SimulationContext] = None,
) -> OnChipStorageResult:
    """Run the Fig. 6 characterization.

    The performance sweep keeps the scenario host GPU's compute/bandwidth and
    only changes the on-chip storage, isolating the variable the figure
    studies.
    """
    ctx = context or SimulationContext(max_workers=1)
    scenario = ctx.scenario
    names = ctx.select_benchmarks(benchmarks)
    device_names = devices or list(ONCHIP_STORAGE_SWEEP)
    baseline = scenario.gpu

    def _row(name: str) -> OnChipStorageRow:
        routing = RoutingWorkload(ctx.benchmark_config(name))
        footprint = routing.footprint()
        ratios: Dict[str, float] = {}
        performance: Dict[str, float] = {}
        reference_time: Optional[float] = None
        for device_name in device_names:
            storage = GPU_DEVICES[device_name].onchip_storage_bytes
            ratios[device_name] = footprint.ratio_to_storage(storage)
            simulator = GPUSimulator(baseline.with_onchip_storage(storage), scenario.gpu_params)
            time = simulator.simulate_routing(routing).total_time
            if reference_time is None:
                reference_time = time
            performance[device_name] = reference_time / time
        return OnChipStorageRow(
            benchmark=name,
            intermediate_bytes=footprint.intermediate_bytes,
            ratio_by_device=ratios,
            normalized_performance_by_device=performance,
        )

    rows = ctx.map(_row, names)
    return OnChipStorageResult(
        rows=rows,
        devices=device_names,
        average_ratio_by_device={
            device: arithmetic_mean([row.ratio_by_device[device] for row in rows])
            for device in device_names
        },
        average_performance_by_device={
            device: arithmetic_mean([row.normalized_performance_by_device[device] for row in rows])
            for device in device_names
        },
    )


def format_report(result: OnChipStorageResult) -> str:
    """Render the Fig. 6a ratios and Fig. 6b normalized performance."""
    ratio_table = format_table(
        headers=["Benchmark", "Intermediates (MB)"] + [f"ratio {d}" for d in result.devices],
        rows=[
            [row.benchmark, row.intermediate_bytes / 1e6]
            + [row.ratio_by_device[d] for d in result.devices]
            for row in result.rows
        ],
        title="Fig. 6(a) -- intermediate variables vs. on-chip storage",
    )
    perf_table = format_table(
        headers=["Benchmark"] + [f"perf {d}" for d in result.devices],
        rows=[
            [row.benchmark] + [row.normalized_performance_by_device[d] for d in result.devices]
            for row in result.rows
        ],
        title="Fig. 6(b) -- RP performance vs. on-chip storage (normalized to the smallest)",
    )
    best_device = result.devices[-1]
    return (
        f"{ratio_table}\n\n{perf_table}\n"
        f"Average normalized RP performance on {best_device}: "
        f"{result.average_performance_by_device[best_device]:.3f}x (paper: up to ~1.14x)"
    )


@register_experiment
class Fig06Experiment(Experiment):
    """Fig. 6 -- routing intermediates vs. GPU on-chip storage."""

    name = "fig06"
    title = "Fig. 6 -- intermediate variables vs. on-chip storage"

    def run(self, context, benchmarks=None):
        return run(benchmarks=benchmarks, context=context)

    def format_report(self, result):
        return format_report(result)
